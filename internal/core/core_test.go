package core

import (
	"math"
	"testing"

	"cdrstoch/internal/dist"
	"cdrstoch/internal/kron"
	"cdrstoch/internal/markov"
)

// tinySpec returns a deliberately small model (hundreds of states) so that
// exhaustive and dense reference computations stay fast.
func tinySpec(t testing.TB) Spec {
	t.Helper()
	h := 1.0 / 16
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: h / 4, Shape: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      2,
		EyeJitter:         dist.NewGaussian(0, 0.1),
		Drift:             drift,
		CounterLen:        2,
		Threshold:         0.5,
	}
}

func buildTiny(t testing.TB) *Model {
	t.Helper()
	m, err := Build(tinySpec(t))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultSpecBuilds(t *testing.T) {
	m, err := Build(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != m.D*m.C*m.M {
		t.Error("state count inconsistent")
	}
	if m.D != 4 || m.C != 15 || m.M != 97 {
		t.Errorf("default dims %d/%d/%d", m.D, m.C, m.M)
	}
	if m.P.NNZ() == 0 {
		t.Error("empty TPM")
	}
	if err := m.P.CheckStochastic(1e-9); err != nil {
		t.Error(err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := tinySpec(t)
	mutate := []func(*Spec){
		func(s *Spec) { s.GridStep = 0 },
		func(s *Spec) { s.PhaseMax = 0.2 }, // below threshold
		func(s *Spec) { s.CorrectionStep = 0 },
		func(s *Spec) { s.CorrectionStep = 0.03 }, // not a grid multiple
		func(s *Spec) { s.TransitionDensity = -0.1 },
		func(s *Spec) { s.TransitionDensity = 1.5 },
		func(s *Spec) { s.TransitionDensity = 0; s.MaxRunLength = 0 },
		func(s *Spec) { s.MaxRunLength = -1 },
		func(s *Spec) { s.EyeJitter = nil },
		func(s *Spec) { s.Drift = nil },
		func(s *Spec) {
			d, _ := dist.DriftPMF(dist.DriftSpec{Step: 0.01, Max: 0.03, Mean: 0, Shape: 0.5})
			s.Drift = d // wrong step
		},
		func(s *Spec) { s.CounterLen = 0 },
		func(s *Spec) { s.Threshold = 0 },
	}
	for i, f := range mutate {
		s := base
		f(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestIndexRoundTrips(t *testing.T) {
	m := buildTiny(t)
	for d := 0; d < m.D; d++ {
		for c := 0; c < m.C; c++ {
			for mi := 0; mi < m.M; mi++ {
				idx := m.StateIndex(d, c, mi)
				gd, gc, gm := m.Coords(idx)
				if gd != d || gc != c || gm != mi {
					t.Fatalf("coords(%d) = (%d,%d,%d), want (%d,%d,%d)", idx, gd, gc, gm, d, c, mi)
				}
			}
		}
	}
	for mi := 0; mi < m.M; mi++ {
		if got := m.PhaseIndex(m.PhaseValue(mi)); got != mi {
			t.Fatalf("PhaseIndex(PhaseValue(%d)) = %d", mi, got)
		}
	}
	if m.PhaseIndex(-10) != 0 || m.PhaseIndex(10) != m.M-1 {
		t.Error("PhaseIndex clamping")
	}
	if m.PhaseValue(m.mid) != 0 {
		t.Error("mid phase must be zero")
	}
}

func TestCounterStepSemantics(t *testing.T) {
	m := buildTiny(t) // L = 2: counter values {-1, 0, +1}, indices {0,1,2}
	// +1 from c=+1 overflows: reset to 0, retard by G.
	next, corr := m.counterStep(2, +1)
	if next != 1 || corr != -m.corrSteps {
		t.Errorf("overflow: next=%d corr=%d", next, corr)
	}
	// -1 from c=-1 underflows: reset to 0, advance by G.
	next, corr = m.counterStep(0, -1)
	if next != 1 || corr != m.corrSteps {
		t.Errorf("underflow: next=%d corr=%d", next, corr)
	}
	// Interior moves emit no correction.
	next, corr = m.counterStep(1, +1)
	if next != 2 || corr != 0 {
		t.Errorf("interior up: next=%d corr=%d", next, corr)
	}
	if v := m.CounterValue(0); v != -1 {
		t.Errorf("CounterValue(0) = %d", v)
	}
}

func TestCounterLenOne(t *testing.T) {
	s := tinySpec(t)
	s.CounterLen = 1
	m, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.C != 1 {
		t.Fatalf("C = %d", m.C)
	}
	// Every detector decision immediately corrects.
	if _, corr := m.counterStep(0, +1); corr != -m.corrSteps {
		t.Error("L=1 must correct on every LEAD")
	}
}

func TestModelIsErgodic(t *testing.T) {
	m := buildTiny(t)
	ch, err := m.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if !ch.IsIrreducible() {
		t.Fatal("model chain reducible")
	}
	if !ch.IsErgodic() {
		t.Fatal("model chain not ergodic")
	}
}

func TestSolveMatchesDirect(t *testing.T) {
	m := buildTiny(t)
	a, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(a.Pi[i]-ref[i]) > 1e-9 {
			t.Fatalf("pi[%d]: mg %g vs gth %g", i, a.Pi[i], ref[i])
		}
	}
	if math.Abs(a.BER-m.BER(ref)) > 1e-12 {
		t.Error("BER differs between solvers")
	}
}

func TestMarginalsSumToOne(t *testing.T) {
	m := buildTiny(t)
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	for name, marg := range map[string][]float64{
		"phase":   m.PhaseMarginal(pi),
		"counter": m.CounterMarginal(pi),
		"data":    m.DataMarginal(pi),
	} {
		sum := 0.0
		for _, v := range marg {
			if v < -1e-15 {
				t.Errorf("%s marginal has negative mass", name)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s marginal sums to %g", name, sum)
		}
	}
}

func TestPhasePDFAndJitterPDF(t *testing.T) {
	m := buildTiny(t)
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	pdf := m.PhasePDF(pi)
	integral := 0.0
	for _, v := range pdf {
		integral += v * m.Spec.GridStep
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("phase PDF integrates to %g", integral)
	}
	jpdf, err := m.PhasePlusJitterPDF(pi, -1, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	jint := 0.0
	for _, v := range jpdf {
		jint += v * (2.0 / 200)
	}
	// n_w tails beyond ±1 UI are negligible at sigma = 0.1.
	if math.Abs(jint-1) > 1e-6 {
		t.Errorf("jitter PDF integrates to %g", jint)
	}
	if _, err := m.PhasePlusJitterPDF(pi, 1, -1, 10); err == nil {
		t.Error("inverted grid accepted")
	}
}

func TestBERMonotoneInEyeJitter(t *testing.T) {
	low := tinySpec(t)
	high := tinySpec(t)
	high.EyeJitter = dist.NewGaussian(0, 0.2)
	mLow, err := Build(low)
	if err != nil {
		t.Fatal(err)
	}
	mHigh, err := Build(high)
	if err != nil {
		t.Fatal(err)
	}
	piLow, err := mLow.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	piHigh, err := mHigh.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	berLow, berHigh := mLow.BER(piLow), mHigh.BER(piHigh)
	if berLow <= 0 || berHigh <= 0 {
		t.Fatalf("BERs must be positive: %g %g", berLow, berHigh)
	}
	if berHigh <= berLow {
		t.Fatalf("BER not monotone: low %g, high %g", berLow, berHigh)
	}
}

func TestSlipSetAndStats(t *testing.T) {
	m := buildTiny(t)
	set := m.SlipSet()
	count := 0
	for idx, in := range set {
		phi := m.PhaseValue(idx % m.M)
		want := phi >= 0.5 || phi <= -0.5
		if in != want {
			t.Fatalf("slip set wrong at phi=%g", phi)
		}
		if in {
			count++
		}
	}
	if count != 2*m.D*m.C {
		t.Errorf("slip states = %d, want %d", count, 2*m.D*m.C)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.SlipStats(pi)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Flux <= 0 || math.IsInf(stats.MeanTimeBetween, 1) {
		t.Fatalf("slip stats degenerate: %+v", stats)
	}
	mts, err := m.MeanTimeToSlip()
	if err != nil {
		t.Fatal(err)
	}
	if mts <= 0 {
		t.Fatalf("mean time to slip = %g", mts)
	}
	// The flux-based between-slip time and the locked-start hitting time
	// agree within an order of magnitude on this high-noise toy model.
	ratio := mts / stats.MeanTimeBetween
	if ratio < 0.1 || ratio > 10 {
		t.Fatalf("slip measures inconsistent: hit %g vs flux %g", mts, stats.MeanTimeBetween)
	}
}

func TestSlipQuasiStationary(t *testing.T) {
	m := buildTiny(t)
	qs, err := m.SlipQuasiStationary()
	if err != nil {
		t.Fatal(err)
	}
	if !qs.Converged {
		t.Fatalf("not converged: %+v", qs)
	}
	if qs.HazardPerStep <= 0 || qs.HazardPerStep >= 1 {
		t.Fatalf("hazard %g", qs.HazardPerStep)
	}
	// The hazard and the stationary-flux slip rate agree within a factor
	// of a few on this small model.
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	flux, err := m.SlipStats(pi)
	if err != nil {
		t.Fatal(err)
	}
	ratio := qs.HazardPerStep * flux.MeanTimeBetween
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("hazard %g vs flux rate %g", qs.HazardPerStep, 1/flux.MeanTimeBetween)
	}
	// The conditioned BER is a valid probability and differs from the
	// unconditioned one (the surviving ensemble excludes the slip set).
	condBER := m.BER(qs.Nu)
	if condBER <= 0 || condBER >= 1 {
		t.Fatalf("conditioned BER %g", condBER)
	}
}

func TestDescriptorMatchesDirectBuild(t *testing.T) {
	m := buildTiny(t)
	d, err := m.BuildDescriptor()
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != m.NumStates() {
		t.Fatalf("descriptor dim %d, model %d", d.Dim(), m.NumStates())
	}
	if d.NumTerms() != 5 {
		t.Errorf("terms = %d, want 5", d.NumTerms())
	}
	mat := d.ToCSR()
	n := m.NumStates()
	for i := 0; i < n; i++ {
		cols, vals := m.P.Row(i)
		kcols, kvals := mat.Row(i)
		if len(cols) != len(kcols) {
			t.Fatalf("row %d: nnz %d vs %d", i, len(cols), len(kcols))
		}
		for k := range cols {
			if cols[k] != kcols[k] || math.Abs(vals[k]-kvals[k]) > 1e-12 {
				t.Fatalf("row %d entry %d: (%d,%g) vs (%d,%g)", i, k, cols[k], vals[k], kcols[k], kvals[k])
			}
		}
	}
}

func TestDescriptorStationaryMatches(t *testing.T) {
	m := buildTiny(t)
	d, err := m.BuildDescriptor()
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.StationaryPower(kron.PowerOptions{Tol: 1e-12, MaxIter: 200000, Damping: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-11 {
		t.Fatalf("descriptor power residual %g", res.Residual)
	}
	pi := res.Pi
	ref, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(pi[i]-ref[i]) > 1e-8 {
			t.Fatalf("pi[%d]: kron %g vs gth %g", i, pi[i], ref[i])
		}
	}
}

// TestNetworkMatchesDirectBuild: with the eye jitter replaced by the same
// grid PMF on both sides, the explicit FSM-network chain and the direct
// construction must agree row by row on the reachable states.
func TestNetworkMatchesDirectBuild(t *testing.T) {
	s := tinySpec(t)
	nwPMF, err := dist.Quantize(dist.NewGaussian(0, 0.1), s.GridStep, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.EyeJitter = nwPMF // PMF satisfies dist.Continuous
	m, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	net, err := m.AsNetwork(nwPMF)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := net.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.States) == 0 || len(ch.States) > m.NumStates() {
		t.Fatalf("reachable states = %d", len(ch.States))
	}
	// Machine registration order: data, pd, counter, phase.
	toModel := func(tuple []int) int { return m.StateIndex(tuple[0], tuple[2], tuple[3]) }
	for i, tuple := range ch.States {
		from := toModel(tuple)
		netRow := map[int]float64{}
		cols, vals := ch.P.Row(i)
		for k, c := range cols {
			netRow[toModel(ch.States[c])] += vals[k]
		}
		dcols, dvals := m.P.Row(from)
		if len(dcols) != len(netRow) {
			t.Fatalf("state %v: nnz %d (direct) vs %d (network)", tuple, len(dcols), len(netRow))
		}
		for k, j := range dcols {
			if math.Abs(netRow[j]-dvals[k]) > 1e-12 {
				t.Fatalf("state %v -> %d: direct %g vs network %g", tuple, j, dvals[k], netRow[j])
			}
		}
	}
}

func TestAsNetworkRequiresPMF(t *testing.T) {
	m := buildTiny(t)
	if _, err := m.AsNetwork(nil); err == nil {
		t.Error("nil PMF accepted")
	}
}

func TestFigureAnnotations(t *testing.T) {
	m := buildTiny(t)
	a, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	header := m.FigureHeader(a.BER)
	footer := m.FigureFooter(a)
	for _, want := range []string{"COUNTER: 2", "STDnw:", "MAXnr:", "BER:"} {
		if !contains(header, want) {
			t.Errorf("header missing %q: %s", want, header)
		}
	}
	for _, want := range []string{"Size:", "Iter:", "Matrixformtime:", "Solvetime:"} {
		if !contains(footer, want) {
			t.Errorf("footer missing %q: %s", want, footer)
		}
	}
	if m.Describe() == "" {
		t.Error("empty Describe")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestLockingBehavior: with modest noise, the stationary phase-error
// distribution must concentrate near zero (the loop locks).
func TestLockingBehavior(t *testing.T) {
	m := buildTiny(t)
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	marg := m.PhaseMarginal(pi)
	nearLock := 0.0
	for mi, p := range marg {
		if math.Abs(m.PhaseValue(mi)) <= 0.25 {
			nearLock += p
		}
	}
	if nearLock < 0.8 {
		t.Fatalf("only %g of the mass within ±0.25 UI; loop failed to lock", nearLock)
	}
}

// TestDriftShiftsLockPoint: a strong positive-mean n_r pushes the
// stationary phase mean positive relative to a zero-mean drift.
func TestDriftShiftsLockPoint(t *testing.T) {
	mean := func(s Spec) float64 {
		m, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := m.SolveDirect()
		if err != nil {
			t.Fatal(err)
		}
		marg := m.PhaseMarginal(pi)
		mu := 0.0
		for mi, p := range marg {
			mu += p * m.PhaseValue(mi)
		}
		return mu
	}
	s0 := tinySpec(t)
	d0, err := dist.DriftPMF(dist.DriftSpec{Step: s0.GridStep, Max: 2 * s0.GridStep, Mean: 0, Shape: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s0.Drift = d0
	sPos := tinySpec(t)
	dPos, err := dist.DriftPMF(dist.DriftSpec{Step: s0.GridStep, Max: 2 * s0.GridStep, Mean: s0.GridStep / 2, Shape: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sPos.Drift = dPos
	if mean(sPos) <= mean(s0) {
		t.Fatal("positive drift did not shift the lock point")
	}
}

func TestHierarchyShape(t *testing.T) {
	m := buildTiny(t)
	parts, err := m.Hierarchy(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) == 0 {
		t.Fatal("no hierarchy levels")
	}
	if parts[0].NumStates() != m.NumStates() {
		t.Error("finest partition size mismatch")
	}
}

// TestBERNeverBelowFloor: BER must stay within [0, 1] and positive for a
// Gaussian jitter model (the tails never vanish exactly).
func TestBERBounds(t *testing.T) {
	m := buildTiny(t)
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	ber := m.BER(pi)
	if ber <= 0 || ber >= 1 {
		t.Fatalf("BER = %g", ber)
	}
	ch, err := markov.New(m.P)
	if err != nil {
		t.Fatal(err)
	}
	if r := ch.Residual(pi); r > 1e-10 {
		t.Fatalf("GTH solution residual %g", r)
	}
}
