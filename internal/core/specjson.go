package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"cdrstoch/internal/dist"
)

// This file gives Spec a total, canonical JSON encoding. "Total" means
// every Spec assembled from the laws in internal/dist marshals without
// loss; "canonical" means the encoding is a pure function of the Spec
// value — struct-driven field order, no maps, shortest-round-trip float
// formatting — so byte equality of encodings coincides with semantic
// equality of specs. internal/serve/speckey hashes these bytes to key the
// analysis result cache, and cdrserved decodes request bodies with the
// same codec, so requests and cache keys can never disagree about what a
// spec means.
//
// Continuous laws are encoded as a discriminated union on "kind":
//
//	{"kind":"gaussian","mu":0,"sigma":0.02}
//	{"kind":"uniform","a":-0.1,"b":0.1}
//	{"kind":"sinusoidal","amp":0.25}
//	{"kind":"laplace","mu":0,"b":0.014}
//	{"kind":"pmf","pmf":{"step":0.015625,"prob":[...]}}
//	{"kind":"mixture","components":[...],"weights":[...]}
//
// Unknown kinds fail to decode; law types outside internal/dist fail to
// encode (both with descriptive errors, never panics).

// distWire is the wire form of a dist.Continuous law.
type distWire struct {
	Kind       string     `json:"kind"`
	Mu         float64    `json:"mu,omitempty"`
	Sigma      float64    `json:"sigma,omitempty"`
	A          float64    `json:"a,omitempty"`
	B          float64    `json:"b,omitempty"`
	Amp        float64    `json:"amp,omitempty"`
	Components []distWire `json:"components,omitempty"`
	Weights    []float64  `json:"weights,omitempty"`
	PMF        *pmfWire   `json:"pmf,omitempty"`
}

// pmfWire is the wire form of a *dist.PMF.
type pmfWire struct {
	Step   float64   `json:"step"`
	Origin float64   `json:"origin,omitempty"`
	MinK   int       `json:"min_k,omitempty"`
	Prob   []float64 `json:"prob"`
}

// specWire is the wire form of Spec.
type specWire struct {
	GridStep          float64   `json:"grid_step"`
	PhaseMax          float64   `json:"phase_max,omitempty"`
	CorrectionStep    float64   `json:"correction_step"`
	TransitionDensity float64   `json:"transition_density"`
	MaxRunLength      int       `json:"max_run_length,omitempty"`
	EyeJitter         *distWire `json:"eye_jitter,omitempty"`
	Drift             *pmfWire  `json:"drift,omitempty"`
	CounterLen        int       `json:"counter_len"`
	Threshold         float64   `json:"threshold"`
	PDDeadZone        float64   `json:"pd_dead_zone,omitempty"`
	WrapPhase         bool      `json:"wrap_phase,omitempty"`
}

func encodePMF(p *dist.PMF) *pmfWire {
	prob := make([]float64, len(p.Prob))
	copy(prob, p.Prob)
	return &pmfWire{Step: p.Step, Origin: p.Origin, MinK: p.MinK, Prob: prob}
}

func decodePMF(w *pmfWire) (*dist.PMF, error) {
	return dist.NewPMF(w.Step, w.Origin, w.MinK, w.Prob)
}

func encodeContinuous(c dist.Continuous) (*distWire, error) {
	switch law := c.(type) {
	case dist.Gaussian:
		return &distWire{Kind: "gaussian", Mu: law.Mu, Sigma: law.Sigma}, nil
	case dist.Uniform:
		return &distWire{Kind: "uniform", A: law.A, B: law.B}, nil
	case dist.Sinusoidal:
		return &distWire{Kind: "sinusoidal", Amp: law.Amp}, nil
	case dist.Laplace:
		return &distWire{Kind: "laplace", Mu: law.Mu, B: law.B}, nil
	case *dist.PMF:
		return &distWire{Kind: "pmf", PMF: encodePMF(law)}, nil
	case *dist.Mixture:
		comps, weights := law.Components()
		out := &distWire{Kind: "mixture", Weights: weights}
		for _, comp := range comps {
			cw, err := encodeContinuous(comp)
			if err != nil {
				return nil, err
			}
			out.Components = append(out.Components, *cw)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: cannot serialize jitter law %T", c)
	}
}

func decodeContinuous(w *distWire) (dist.Continuous, error) {
	switch w.Kind {
	case "gaussian":
		if w.Sigma <= 0 {
			return nil, fmt.Errorf("core: gaussian sigma %g must be positive", w.Sigma)
		}
		return dist.Gaussian{Mu: w.Mu, Sigma: w.Sigma}, nil
	case "uniform":
		if w.A >= w.B {
			return nil, fmt.Errorf("core: uniform requires a < b, got [%g, %g]", w.A, w.B)
		}
		return dist.Uniform{A: w.A, B: w.B}, nil
	case "sinusoidal":
		if w.Amp <= 0 {
			return nil, fmt.Errorf("core: sinusoidal amplitude %g must be positive", w.Amp)
		}
		return dist.Sinusoidal{Amp: w.Amp}, nil
	case "laplace":
		if w.B <= 0 {
			return nil, fmt.Errorf("core: laplace scale %g must be positive", w.B)
		}
		return dist.Laplace{Mu: w.Mu, B: w.B}, nil
	case "pmf":
		if w.PMF == nil {
			return nil, errors.New(`core: "pmf" law missing its "pmf" field`)
		}
		return decodePMF(w.PMF)
	case "mixture":
		comps := make([]dist.Continuous, 0, len(w.Components))
		for i := range w.Components {
			c, err := decodeContinuous(&w.Components[i])
			if err != nil {
				return nil, fmt.Errorf("core: mixture component %d: %w", i, err)
			}
			comps = append(comps, c)
		}
		return dist.NewMixture(comps, w.Weights)
	case "":
		return nil, errors.New(`core: jitter law missing "kind"`)
	default:
		return nil, fmt.Errorf("core: unknown jitter law kind %q", w.Kind)
	}
}

// MarshalJSON encodes the spec in its canonical wire form. The encoding is
// deterministic (identical specs yield identical bytes), which is what
// internal/serve/speckey relies on for content-addressed cache keys.
func (s Spec) MarshalJSON() ([]byte, error) {
	w := specWire{
		GridStep:          s.GridStep,
		PhaseMax:          s.PhaseMax,
		CorrectionStep:    s.CorrectionStep,
		TransitionDensity: s.TransitionDensity,
		MaxRunLength:      s.MaxRunLength,
		CounterLen:        s.CounterLen,
		Threshold:         s.Threshold,
		PDDeadZone:        s.PDDeadZone,
		WrapPhase:         s.WrapPhase,
	}
	if s.EyeJitter != nil {
		ew, err := encodeContinuous(s.EyeJitter)
		if err != nil {
			return nil, err
		}
		w.EyeJitter = ew
	}
	if s.Drift != nil {
		w.Drift = encodePMF(s.Drift)
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the canonical wire form. Decoding reconstructs the
// jitter laws but does not run Validate; callers that accept untrusted
// input (the cdrserved request handlers) validate separately so that
// structural and semantic errors stay distinguishable.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var w specWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("core: bad spec JSON: %w", err)
	}
	out := Spec{
		GridStep:          w.GridStep,
		PhaseMax:          w.PhaseMax,
		CorrectionStep:    w.CorrectionStep,
		TransitionDensity: w.TransitionDensity,
		MaxRunLength:      w.MaxRunLength,
		CounterLen:        w.CounterLen,
		Threshold:         w.Threshold,
		PDDeadZone:        w.PDDeadZone,
		WrapPhase:         w.WrapPhase,
	}
	if w.EyeJitter != nil {
		law, err := decodeContinuous(w.EyeJitter)
		if err != nil {
			return err
		}
		out.EyeJitter = law
	}
	if w.Drift != nil {
		drift, err := decodePMF(w.Drift)
		if err != nil {
			return fmt.Errorf("core: bad drift PMF: %w", err)
		}
		out.Drift = drift
	}
	*s = out
	return nil
}
