package core

import (
	"errors"
	"math"
	"testing"

	"cdrstoch/internal/multigrid"
)

// TestSolveKronMatchesExplicit is the backend-parity gate: the matrix-free
// solve must reproduce the explicit multigrid solve — stationary vector,
// BER, and slip statistics — to 1e-12 on a seed model.
func TestSolveKronMatchesExplicit(t *testing.T) {
	m := buildTiny(t)
	explicit, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	implicit, err := m.SolveKron(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range explicit.Pi {
		if math.Abs(explicit.Pi[i]-implicit.Pi[i]) > 1e-12 {
			t.Fatalf("pi[%d]: explicit %g vs kron %g (diff %g)",
				i, explicit.Pi[i], implicit.Pi[i], explicit.Pi[i]-implicit.Pi[i])
		}
	}
	if math.Abs(explicit.BER-implicit.BER) > 1e-12 {
		t.Fatalf("BER: explicit %g vs kron %g", explicit.BER, implicit.BER)
	}
	se, err := m.SlipStats(explicit.Pi)
	if err != nil {
		t.Fatal(err)
	}
	shell, err := BuildShell(m.Spec)
	if err != nil {
		t.Fatal(err)
	}
	si, err := shell.SlipStats(implicit.Pi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(se.Flux-si.Flux) > 1e-12 || math.Abs(se.TargetMass-si.TargetMass) > 1e-12 {
		t.Fatalf("slip: explicit %+v vs kron %+v", se, si)
	}
}

// A matrix-free shell never assembles the TPM but must reproduce every
// derived quantity the explicit model provides.
func TestBuildShellMatchesBuild(t *testing.T) {
	spec := tinySpec(t)
	full, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	shell, err := BuildShell(spec)
	if err != nil {
		t.Fatal(err)
	}
	if shell.P != nil {
		t.Fatal("shell assembled a TPM")
	}
	if shell.Desc == nil {
		t.Fatal("shell has no descriptor")
	}
	if shell.NumStates() != full.NumStates() || shell.LockedIndex() != full.LockedIndex() {
		t.Fatal("shell dimensions differ")
	}
	a, err := shell.SolveKron(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := full.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(a.Pi[i]-ref[i]) > 1e-10 {
			t.Fatalf("pi[%d]: shell %g vs direct %g", i, a.Pi[i], ref[i])
		}
	}
	if _, err := shell.SolveDirect(); err == nil {
		t.Fatal("SolveDirect on a shell succeeded")
	}
	ch, err := shell.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if ch.P() != nil {
		t.Fatal("shell chain exposes a CSR")
	}
	if shell.Describe() == "" {
		t.Fatal("empty description")
	}
}

// WrapPhase shells tally the wrap-slip probabilities in the assembly loop
// without a triplet; WrapSlipRate must agree with the explicit build.
func TestBuildShellWrapSlipParity(t *testing.T) {
	spec := tinySpec(t)
	spec.WrapPhase = true
	full, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	shell, err := BuildShell(spec)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := full.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	rf, mf, err := full.WrapSlipRate(pi)
	if err != nil {
		t.Fatal(err)
	}
	rs, ms, err := shell.WrapSlipRate(pi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rf-rs) > 1e-15 || math.Abs(mf-ms) > 1e-3*math.Abs(mf) {
		t.Fatalf("wrap slip: full (%g, %g) vs shell (%g, %g)", rf, mf, rs, ms)
	}
}

func TestSolveKronUnconverged(t *testing.T) {
	m := buildTiny(t)
	_, err := m.SolveKron(SolveOptions{Multigrid: multigrid.Config{MaxCycles: 1, Tol: 1e-15}})
	if err == nil {
		t.Fatal("1-cycle solve converged")
	}
	if !errors.Is(err, ErrUnconverged) {
		t.Fatalf("err = %v, want ErrUnconverged", err)
	}
}
