// Package core implements the paper's primary contribution: the stochastic
// model of the digital phase-selection loop of a clock-and-data-recovery
// (CDR) circuit, its Markov-chain construction, and the performance
// measures derived from it (bit error rate, stationary phase-error
// densities, cycle-slip statistics).
//
// # The circuit (paper Figure 1)
//
// The modeled CDR has two coupled loops. An analog charge-pump PLL with a
// crystal reference drives a multi-phase VCO; a digital loop selects the
// best VCO phase to retime the incoming data. The digital loop consists of
// a phase detector (PD) comparing the selected clock phase against data
// transitions, a digital loop filter (an up/down counter), and a phase
// selection multiplexer stepping the selected phase by the smallest
// increment G available from the multi-phase clock. This package models
// the digital loop; the analog loop enters through the clock-jitter
// characterization (see internal/pllsim).
//
// # The model (paper Figure 2, equations (2)–(3))
//
//	Φ_{k+1} = Φ_k − f(Φ_k + n_w(k), S_k) + n_r(k)
//	S_{k+1} = g(Φ_k + n_w(k), S_k)
//
// Φ is the phase error between incoming data and recovered clock, n_w the
// white eye-opening jitter, n_r the white accumulating noise with (usually)
// nonzero mean, f ∈ {−G, 0, +G} the phase correction and g the phase
// detector/filter FSM. Four interacting FSMs realize the model: a
// SONET-style data source, the phase detector (LAG/NULL/LEAD), the up/down
// counter and the phase-error integrator on a discretized grid.
package core

import (
	"errors"
	"fmt"
	"math"

	"cdrstoch/internal/dist"
)

// Spec parameterizes the CDR model. The zero value is not valid; use
// DefaultSpec as a starting point.
type Spec struct {
	// GridStep is the phase-error discretization step h in UI. Powers of
	// two (1/64, 1/128, …) keep grid arithmetic exact in float64.
	GridStep float64
	// PhaseMax bounds the phase grid: Φ ∈ [−PhaseMax, +PhaseMax]. The
	// boundary saturates (reflecting analysis); states at or beyond the
	// decision threshold form the cycle-slip set.
	PhaseMax float64
	// CorrectionStep is the phase-selection increment G in UI — the
	// smallest phase step of the multi-phase clock. Must be a positive
	// multiple of GridStep.
	CorrectionStep float64

	// TransitionDensity is the probability that consecutive data bits
	// differ. The PD produces phase information only on transitions.
	TransitionDensity float64
	// MaxRunLength forces a transition after this many identical bits
	// (the paper: "the longest possible bit sequence with no
	// transitions"). Zero disables the constraint.
	MaxRunLength int

	// EyeJitter is the law of n_w, the white eye-opening jitter in UI.
	EyeJitter dist.Continuous
	// Drift is the PMF of n_r in UI on multiples of GridStep.
	Drift *dist.PMF

	// CounterLen is the loop-filter up/down counter overflow length L:
	// the counter walks in (−L, L) and emits a phase correction when it
	// would reach ±L. L = 1 applies a correction on every transition.
	CounterLen int

	// Threshold is the decision threshold in UI: a bit error occurs when
	// |Φ + n_w| exceeds it. Half a clock cycle (0.5 UI) by default.
	Threshold float64

	// PDDeadZone is the phase detector's dead zone half-width in UI:
	// on a data transition the PD emits NULL (no counter update) when
	// |Φ + n_w| ≤ PDDeadZone, LEAD/LAG otherwise. Real bang-bang
	// detectors exhibit such a zone through comparator metastability and
	// setup/hold margins; zero models the ideal signum PD of the paper's
	// equation (1).
	PDDeadZone float64

	// WrapPhase switches the phase-error boundary model. When false
	// (default) the grid spans [−PhaseMax, +PhaseMax] and saturates at the
	// ends — the analysis-friendly model whose boundary states form the
	// slip set. When true the grid covers exactly one UI, [−0.5, 0.5−h],
	// and the phase wraps modulo 1 UI: a cycle slip is then a physical
	// event (the loop re-locks one bit off) whose stationary rate the
	// model counts exactly (Model.WrapSlipRate). PhaseMax is ignored.
	WrapPhase bool
}

// DefaultSpec returns the baseline configuration used across examples and
// benchmarks: a 1/64-UI grid on ±0.75 UI, a 1/16-UI phase mux step, SONET-
// style data with transition density 1/2 and maximum run length 4, 0.02 UI
// RMS Gaussian eye jitter, and a bounded skewed drift with MAXnr = 1/16 UI.
func DefaultSpec() Spec {
	h := 1.0 / 64
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 4 * h, Mean: h / 4, Shape: 0.5})
	if err != nil {
		panic("core: default drift construction failed: " + err.Error())
	}
	return Spec{
		GridStep:          h,
		PhaseMax:          0.75,
		CorrectionStep:    4 * h, // 1/16 UI: a 16-phase VCO
		TransitionDensity: 0.5,
		MaxRunLength:      4,
		EyeJitter:         dist.NewGaussian(0, 0.02),
		Drift:             drift,
		CounterLen:        8,
		Threshold:         0.5,
	}
}

// Validate checks the specification for consistency.
func (s Spec) Validate() error {
	if s.GridStep <= 0 {
		return errors.New("core: GridStep must be positive")
	}
	if s.WrapPhase {
		cells := 1 / s.GridStep
		if math.Abs(cells-math.Round(cells)) > 1e-9 || math.Round(cells) < 4 {
			return fmt.Errorf("core: WrapPhase requires 1/GridStep to be an integer >= 4, got %g", cells)
		}
		if s.Threshold > 0.5 {
			return fmt.Errorf("core: WrapPhase threshold %g exceeds the half-UI domain", s.Threshold)
		}
	} else if s.PhaseMax < s.Threshold {
		return fmt.Errorf("core: PhaseMax %g must reach the decision threshold %g", s.PhaseMax, s.Threshold)
	} else if s.GridStep >= s.PhaseMax {
		// A step at or beyond the half-span collapses the grid to at most
		// three points and the boundary slip states swallow the lock point.
		return fmt.Errorf("core: degenerate grid: GridStep %g must be smaller than PhaseMax %g", s.GridStep, s.PhaseMax)
	}
	if s.CorrectionStep <= 0 {
		return errors.New("core: CorrectionStep must be positive")
	}
	ratio := s.CorrectionStep / s.GridStep
	if math.Abs(ratio-math.Round(ratio)) > 1e-9 {
		return fmt.Errorf("core: CorrectionStep %g is not a multiple of GridStep %g", s.CorrectionStep, s.GridStep)
	}
	if s.TransitionDensity < 0 || s.TransitionDensity > 1 {
		return fmt.Errorf("core: TransitionDensity %g outside [0,1]", s.TransitionDensity)
	}
	if s.TransitionDensity == 0 && s.MaxRunLength == 0 {
		return errors.New("core: data never transitions; the loop receives no phase information")
	}
	if s.MaxRunLength < 0 {
		return errors.New("core: negative MaxRunLength")
	}
	if s.EyeJitter == nil {
		return errors.New("core: EyeJitter law required")
	}
	if s.Drift == nil {
		return errors.New("core: Drift PMF required")
	}
	if math.Abs(s.Drift.Step-s.GridStep) > 1e-12*s.GridStep {
		return fmt.Errorf("core: Drift step %g must equal GridStep %g", s.Drift.Step, s.GridStep)
	}
	if s.CounterLen < 1 {
		return errors.New("core: CounterLen must be >= 1")
	}
	if s.Threshold <= 0 {
		return errors.New("core: Threshold must be positive")
	}
	if s.PDDeadZone < 0 || s.PDDeadZone >= s.Threshold {
		return fmt.Errorf("core: PDDeadZone %g outside [0, Threshold)", s.PDDeadZone)
	}
	return nil
}

// numData returns the number of data-source FSM states (run-length
// tracker); 1 when no run-length constraint applies.
func (s Spec) numData() int {
	if s.MaxRunLength <= 0 {
		return 1
	}
	return s.MaxRunLength
}

// transProb returns the probability of a data transition from run-length
// state r (0-based count of identical bits already seen beyond the first).
func (s Spec) transProb(r int) float64 {
	if s.MaxRunLength > 0 && r == s.MaxRunLength-1 {
		return 1
	}
	return s.TransitionDensity
}

// nextDataState returns the data FSM successor for a given branch.
func (s Spec) nextDataState(r int, transition bool) int {
	if transition {
		return 0
	}
	if s.MaxRunLength > 0 && r < s.MaxRunLength-1 {
		return r + 1
	}
	if s.MaxRunLength > 0 {
		// Unreachable: transProb forces a transition at the cap.
		return r
	}
	return 0
}

// numCounter returns the number of counter states (2L − 1).
func (s Spec) numCounter() int { return 2*s.CounterLen - 1 }

// gridSize returns the number of phase grid points M: odd and spanning
// ±PhaseMax in the saturating model, exactly one UI in the wrap model.
func (s Spec) gridSize() int {
	if s.WrapPhase {
		return int(math.Round(1 / s.GridStep))
	}
	half := int(math.Round(s.PhaseMax / s.GridStep))
	return 2*half + 1
}
