package core

import (
	"cdrstoch/internal/kron"
	"cdrstoch/internal/spmat"
)

// BuildDescriptor expresses the CDR transition matrix as a sum of five
// Kronecker-product terms over the (data, counter, phase) components —
// the "hierarchical Kronecker algebra-like" compositional representation
// the paper proposes for manipulating the TPM without storing it:
//
//	P =   A_d⁰ ⊗ I_C    ⊗ S⁰            (no data transition)
//	    + A_d¹ ⊗ C⁺ₙₒ   ⊗ D₊·S⁰         (transition, LEAD, no overflow)
//	    + A_d¹ ⊗ C⁺ₒᵥ   ⊗ D₊·S⁻ᴳ        (transition, LEAD, overflow → −G)
//	    + A_d¹ ⊗ C⁻ₙₒ   ⊗ D₋·S⁰         (transition, LAG, no underflow)
//	    + A_d¹ ⊗ C⁻ₒᵥ   ⊗ D₋·S⁺ᴳ        (transition, LAG, underflow → +G)
//
// where A_d⁰/A_d¹ carry the (possibly state-dependent) transition-density
// probabilities, C± split the counter walk by overflow outcome, D± are
// diagonal matrices of the PD decision probabilities P(Φ + n_w ≷ 0), and
// S^δ applies the phase correction δ followed by the n_r jump with
// saturating boundaries. The phase-dependent decision probabilities live
// entirely inside the phase factors, so every term factorizes exactly.
func (m *Model) BuildDescriptor() (*kron.Descriptor, error) {
	drift := m.Spec.Drift.Trim()

	// Data factors.
	d0 := spmat.NewTriplet(m.D, m.D) // no transition
	d1 := spmat.NewTriplet(m.D, m.D) // transition
	for r := 0; r < m.D; r++ {
		pt := m.Spec.transProb(r)
		if 1-pt > 0 {
			d0.Add(r, m.Spec.nextDataState(r, false), 1-pt)
		}
		if pt > 0 {
			d1.Add(r, 0, pt)
		}
	}

	// Counter factors: the +1 walk split by overflow, likewise −1.
	cpNo := spmat.NewTriplet(m.C, m.C)
	cpOv := spmat.NewTriplet(m.C, m.C)
	cmNo := spmat.NewTriplet(m.C, m.C)
	cmOv := spmat.NewTriplet(m.C, m.C)
	for c := 0; c < m.C; c++ {
		if next, corr := m.counterStep(c, +1); corr != 0 {
			cpOv.Add(c, next, 1)
		} else {
			cpNo.Add(c, next, 1)
		}
		if next, corr := m.counterStep(c, -1); corr != 0 {
			cmOv.Add(c, next, 1)
		} else {
			cmNo.Add(c, next, 1)
		}
	}

	// Phase factors: diag(decision prob) · shift(corr) · n_r, with the
	// decision probabilities evaluated exactly as in the direct build.
	// kind selects the diagonal: +1 LEAD, −1 LAG, 2 NULL-in-dead-zone,
	// 0 the unconditional (no-transition) branch.
	phase := func(kind int, corrSteps int) *spmat.CSR {
		tr := spmat.NewTriplet(m.M, m.M)
		tr.Reserve(m.M * drift.Len())
		for mi := 0; mi < m.M; mi++ {
			pLead, pLag, pNull := m.pdProbs(m.PhaseValue(mi))
			var w float64
			switch kind {
			case +1:
				w = pLead
			case -1:
				w = pLag
			case 2:
				w = pNull
			default:
				w = 1
			}
			if w == 0 {
				continue
			}
			base := mi + corrSteps
			drift.Support(func(_ float64, k int, pk float64) {
				mj := base + k
				if m.Spec.WrapPhase {
					mj = ((mj % m.M) + m.M) % m.M
				} else {
					if mj < 0 {
						mj = 0
					}
					if mj >= m.M {
						mj = m.M - 1
					}
				}
				tr.Add(mi, mj, w*pk)
			})
		}
		return tr.ToCSR()
	}

	idC := spmat.Identity(m.C)
	terms := []kron.Term{
		{Coeff: 1, Factors: []*spmat.CSR{d0.ToCSR(), idC, phase(0, 0)}},
		{Coeff: 1, Factors: []*spmat.CSR{d1.ToCSR(), cpNo.ToCSR(), phase(+1, 0)}},
		{Coeff: 1, Factors: []*spmat.CSR{d1.ToCSR(), cpOv.ToCSR(), phase(+1, -m.corrSteps)}},
		{Coeff: 1, Factors: []*spmat.CSR{d1.ToCSR(), cmNo.ToCSR(), phase(-1, 0)}},
		{Coeff: 1, Factors: []*spmat.CSR{d1.ToCSR(), cmOv.ToCSR(), phase(-1, +m.corrSteps)}},
	}
	if m.Spec.PDDeadZone > 0 {
		// Sixth term: a transition whose Φ + n_w lands in the dead zone
		// leaves the counter untouched.
		terms = append(terms, kron.Term{
			Coeff: 1, Factors: []*spmat.CSR{d1.ToCSR(), idC, phase(2, 0)},
		})
	}
	return kron.NewDescriptor(terms)
}
