package core

import (
	"math"
	"testing"

	"cdrstoch/internal/dist"
)

func deadZoneSpec(t testing.TB, delta float64) Spec {
	t.Helper()
	s := tinySpec(t)
	s.PDDeadZone = delta
	return s
}

func TestPDDeadZoneValidation(t *testing.T) {
	if err := deadZoneSpec(t, 0.1).Validate(); err != nil {
		t.Fatalf("valid dead zone rejected: %v", err)
	}
	if err := deadZoneSpec(t, -0.01).Validate(); err == nil {
		t.Error("negative dead zone accepted")
	}
	if err := deadZoneSpec(t, 0.5).Validate(); err == nil {
		t.Error("dead zone at threshold accepted")
	}
}

func TestPDProbsSumToOne(t *testing.T) {
	m, err := Build(deadZoneSpec(t, 0.08))
	if err != nil {
		t.Fatal(err)
	}
	for mi := 0; mi < m.M; mi++ {
		lead, lag, null := m.pdProbs(m.PhaseValue(mi))
		if lead < 0 || lag < 0 || null < 0 {
			t.Fatalf("negative decision prob at %d", mi)
		}
		if math.Abs(lead+lag+null-1) > 1e-12 {
			t.Fatalf("decision probs sum to %g at phi=%g", lead+lag+null, m.PhaseValue(mi))
		}
	}
	// Zero dead zone: null vanishes.
	m0 := buildTiny(t)
	for mi := 0; mi < m0.M; mi++ {
		_, _, null := m0.pdProbs(m0.PhaseValue(mi))
		if null != 0 {
			t.Fatalf("nonzero null prob without dead zone")
		}
	}
}

func TestDeadZoneModelStochasticAndErgodic(t *testing.T) {
	m, err := Build(deadZoneSpec(t, 0.08))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.P.CheckStochastic(1e-9); err != nil {
		t.Fatal(err)
	}
	ch, err := m.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if !ch.IsErgodic() {
		t.Fatal("dead-zone model not ergodic")
	}
}

// TestDeadZoneReducesCorrectionActivity: inside the dead zone the counter
// holds, so the mux activity must drop relative to the ideal PD.
func TestDeadZoneReducesCorrectionActivity(t *testing.T) {
	ideal, err := Build(deadZoneSpec(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	dz, err := Build(deadZoneSpec(t, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	piI, err := ideal.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	piD, err := dz.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	actI := ideal.CorrectionActivity(piI)
	actD := dz.CorrectionActivity(piD)
	if actD.UpRate+actD.DownRate >= actI.UpRate+actI.DownRate {
		t.Fatalf("dead zone did not reduce activity: %g vs %g",
			actD.UpRate+actD.DownRate, actI.UpRate+actI.DownRate)
	}
	// Equilibrium still balances the drift.
	driftMean := dz.Spec.Drift.Mean()
	if math.Abs(actD.NetUIPerBit+driftMean) > 0.25*driftMean {
		t.Fatalf("net correction %g does not balance drift %g", actD.NetUIPerBit, driftMean)
	}
}

func TestDeadZoneDescriptorMatchesDirect(t *testing.T) {
	m, err := Build(deadZoneSpec(t, 0.08))
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BuildDescriptor()
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTerms() != 6 {
		t.Fatalf("terms = %d, want 6 with a dead zone", d.NumTerms())
	}
	mat := d.ToCSR()
	for i := 0; i < m.NumStates(); i++ {
		cols, vals := m.P.Row(i)
		kcols, kvals := mat.Row(i)
		if len(cols) != len(kcols) {
			t.Fatalf("row %d nnz mismatch: %d vs %d", i, len(cols), len(kcols))
		}
		for k := range cols {
			if cols[k] != kcols[k] || math.Abs(vals[k]-kvals[k]) > 1e-12 {
				t.Fatalf("row %d entry %d mismatch", i, k)
			}
		}
	}
}

func TestDeadZoneNetworkMatchesDirect(t *testing.T) {
	s := deadZoneSpec(t, 1.0/8) // dead zone on grid multiples for exactness
	nwPMF, err := dist.Quantize(dist.NewGaussian(0, 0.1), s.GridStep, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.EyeJitter = nwPMF
	m, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	net, err := m.AsNetwork(nwPMF)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := net.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	toModel := func(tuple []int) int { return m.StateIndex(tuple[0], tuple[2], tuple[3]) }
	for i, tuple := range ch.States {
		from := toModel(tuple)
		netRow := map[int]float64{}
		cols, vals := ch.P.Row(i)
		for k, c := range cols {
			netRow[toModel(ch.States[c])] += vals[k]
		}
		dcols, dvals := m.P.Row(from)
		if len(dcols) != len(netRow) {
			t.Fatalf("state %v: nnz %d vs %d", tuple, len(dcols), len(netRow))
		}
		for k, j := range dcols {
			if math.Abs(netRow[j]-dvals[k]) > 1e-12 {
				t.Fatalf("state %v -> %d: %g vs %g", tuple, j, dvals[k], netRow[j])
			}
		}
	}
}

// TestDeadZoneBERTradeOff: a moderate dead zone changes the BER smoothly
// and keeps it a probability; a huge dead zone effectively opens the loop
// and degrades the BER (drift is no longer tracked).
func TestDeadZoneBERTradeOff(t *testing.T) {
	ber := func(delta float64) float64 {
		m, err := Build(deadZoneSpec(t, delta))
		if err != nil {
			t.Fatal(err)
		}
		pi, err := m.SolveDirect()
		if err != nil {
			t.Fatal(err)
		}
		return m.BER(pi)
	}
	b0 := ber(0)
	bBig := ber(0.4)
	if b0 <= 0 || bBig <= 0 || b0 >= 1 || bBig >= 1 {
		t.Fatalf("BERs out of range: %g %g", b0, bBig)
	}
	if bBig <= b0 {
		t.Fatalf("near-open-loop dead zone did not degrade BER: %g vs %g", bBig, b0)
	}
}
