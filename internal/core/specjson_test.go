package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cdrstoch/internal/dist"
)

// roundTrip marshals, unmarshals and re-marshals a spec, failing the test
// on any codec error, and returns the decoded spec plus both encodings.
func roundTrip(t *testing.T, s Spec) (Spec, []byte, []byte) {
	t.Helper()
	first, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Spec
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	return back, first, second
}

func TestSpecJSONRoundTripDefault(t *testing.T) {
	s := DefaultSpec()
	back, first, second := roundTrip(t, s)
	if !bytes.Equal(first, second) {
		t.Errorf("encoding not stable under round trip:\n%s\n%s", first, second)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped spec invalid: %v", err)
	}
	if back.GridStep != s.GridStep || back.PhaseMax != s.PhaseMax ||
		back.CorrectionStep != s.CorrectionStep || back.CounterLen != s.CounterLen ||
		back.TransitionDensity != s.TransitionDensity || back.MaxRunLength != s.MaxRunLength ||
		back.Threshold != s.Threshold || back.PDDeadZone != s.PDDeadZone ||
		back.WrapPhase != s.WrapPhase {
		t.Errorf("scalar fields changed: %+v vs %+v", back, s)
	}
	if g, ok := back.EyeJitter.(dist.Gaussian); !ok || g.Sigma != 0.02 {
		t.Errorf("eye jitter law changed: %#v", back.EyeJitter)
	}
	if math.Abs(back.Drift.Mean()-s.Drift.Mean()) > 1e-15 {
		t.Errorf("drift mean changed: %g vs %g", back.Drift.Mean(), s.Drift.Mean())
	}
}

func TestSpecJSONRoundTripAllLaws(t *testing.T) {
	pmfEye, err := dist.NewPMF(1.0/64, 0, -1, []float64{0.25, 0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := dist.NewMixture(
		[]dist.Continuous{dist.NewGaussian(0, 0.01), dist.NewSinusoidal(0.1)},
		[]float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	laws := []dist.Continuous{
		dist.NewGaussian(0.001, 0.03),
		dist.NewUniform(-0.05, 0.07),
		dist.NewSinusoidal(0.12),
		dist.NewLaplace(0, 0.02),
		pmfEye,
		mix,
	}
	for _, law := range laws {
		s := DefaultSpec()
		s.EyeJitter = law
		back, first, second := roundTrip(t, s)
		if !bytes.Equal(first, second) {
			t.Errorf("%T: encoding not stable:\n%s\n%s", law, first, second)
		}
		if math.Abs(back.EyeJitter.Std()-law.Std()) > 1e-12 {
			t.Errorf("%T: std changed %g -> %g", law, law.Std(), back.EyeJitter.Std())
		}
		if math.Abs(back.EyeJitter.Mean()-law.Mean()) > 1e-12 {
			t.Errorf("%T: mean changed %g -> %g", law, law.Mean(), back.EyeJitter.Mean())
		}
		if math.Abs(back.EyeJitter.CDF(0.01)-law.CDF(0.01)) > 1e-12 {
			t.Errorf("%T: CDF changed", law)
		}
	}
}

func TestSpecJSONWrapPhase(t *testing.T) {
	s := DefaultSpec()
	s.WrapPhase = true
	s.PhaseMax = 0
	back, _, _ := roundTrip(t, s)
	if !back.WrapPhase {
		t.Error("WrapPhase lost in round trip")
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("wrap spec invalid after round trip: %v", err)
	}
}

func TestSpecJSONDecodeErrors(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"unknown kind", `{"eye_jitter":{"kind":"cauchy"}}`, "unknown jitter law"},
		{"missing kind", `{"eye_jitter":{"mu":1}}`, `missing "kind"`},
		{"bad sigma", `{"eye_jitter":{"kind":"gaussian","sigma":-1}}`, "sigma"},
		{"bad uniform", `{"eye_jitter":{"kind":"uniform","a":2,"b":1}}`, "a < b"},
		{"pmf without payload", `{"eye_jitter":{"kind":"pmf"}}`, "missing"},
		{"bad drift", `{"drift":{"step":-1,"prob":[1]}}`, "drift"},
		{"not json", `{"grid_step": "x"}`, "bad spec JSON"},
	}
	for _, tc := range cases {
		var s Spec
		err := json.Unmarshal([]byte(tc.body), &s)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecJSONEncodeUnsupportedLaw(t *testing.T) {
	s := DefaultSpec()
	s.EyeJitter = unsupportedLaw{}
	if _, err := json.Marshal(s); err == nil {
		t.Error("expected error encoding unsupported law")
	}
}

type unsupportedLaw struct{}

func (unsupportedLaw) CDF(float64) float64 { return 0 }
func (unsupportedLaw) Mean() float64       { return 0 }
func (unsupportedLaw) Std() float64        { return 1 }

func TestValidateDegenerateGrids(t *testing.T) {
	// GridStep at or beyond PhaseMax collapses the saturating grid.
	s := DefaultSpec()
	s.GridStep = s.PhaseMax
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "degenerate grid") {
		t.Errorf("GridStep == PhaseMax: got %v, want degenerate-grid error", err)
	}
	s.GridStep = s.PhaseMax * 2
	if err := s.Validate(); err == nil {
		t.Error("GridStep > PhaseMax accepted")
	}

	// CorrectionStep that is not a grid multiple.
	s = DefaultSpec()
	s.CorrectionStep = s.GridStep * 2.5
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "multiple") {
		t.Errorf("fractional CorrectionStep: got %v, want multiple error", err)
	}

	// Sanity: the default spec still validates.
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("DefaultSpec invalid: %v", err)
	}
}
