package core

import (
	"math"
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"cdrstoch/internal/dist"
)

// randomSpec draws a small random-but-valid specification.
func randomSpec(rng *rand.Rand) (Spec, error) {
	denoms := []int{8, 16, 32}
	h := 1.0 / float64(denoms[rng.Intn(len(denoms))])
	corrMult := 1 + rng.Intn(3)
	maxMult := 1 + rng.Intn(3)
	maxNr := float64(maxMult) * h
	drift, err := dist.DriftPMF(dist.DriftSpec{
		Step:  h,
		Max:   maxNr,
		Mean:  (rng.Float64()*1.6 - 0.8) * maxNr,
		Shape: 0.1 + 0.8*rng.Float64(),
	})
	if err != nil {
		return Spec{}, err
	}
	s := Spec{
		GridStep:          h,
		PhaseMax:          0.5 + float64(rng.Intn(3))*2*h,
		CorrectionStep:    float64(corrMult) * h,
		TransitionDensity: 0.1 + 0.9*rng.Float64(),
		MaxRunLength:      rng.Intn(4), // 0..3
		EyeJitter:         dist.NewGaussian(0, 0.02+0.15*rng.Float64()),
		Drift:             drift,
		CounterLen:        1 + rng.Intn(4),
		Threshold:         0.5,
		WrapPhase:         rng.Intn(2) == 0,
	}
	return s, s.Validate()
}

// Property: every random valid spec assembles into a stochastic TPM whose
// BER under any distribution is a probability and whose marginals are
// consistent.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec, err := randomSpec(rng)
		if err != nil {
			// Rare invalid draws (e.g. drift mean at the bound) are not
			// failures of the property.
			return true
		}
		m, err := Build(spec)
		if err != nil {
			return false
		}
		if err := m.P.CheckStochastic(1e-9); err != nil {
			return false
		}
		// Uniform distribution: marginals and BER sanity.
		n := m.NumStates()
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
		ber := m.BER(pi)
		if ber < 0 || ber > 1 || math.IsNaN(ber) {
			return false
		}
		for _, marg := range [][]float64{m.PhaseMarginal(pi), m.CounterMarginal(pi), m.DataMarginal(pi)} {
			sum := 0.0
			for _, v := range marg {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Kronecker descriptor agrees with the direct build for
// random small specs (both boundary models).
func TestQuickDescriptorEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec, err := randomSpec(rng)
		if err != nil {
			return true
		}
		if spec.GridStep < 1.0/16 {
			return true // keep the materialization cheap
		}
		m, err := Build(spec)
		if err != nil {
			return false
		}
		d, err := m.BuildDescriptor()
		if err != nil {
			return false
		}
		mat := d.ToCSR()
		for i := 0; i < m.NumStates(); i++ {
			cols, vals := m.P.Row(i)
			kcols, kvals := mat.Row(i)
			if len(cols) != len(kcols) {
				return false
			}
			for k := range cols {
				if cols[k] != kcols[k] || math.Abs(vals[k]-kvals[k]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEquationOneRecovery: the paper's equation (1) — the memoryless
// bang-bang loop Φ' = Φ − G·sgn(Φ + n_w) + n_r — is the special case
// CounterLen = 1 with a transition every bit. The model must collapse to
// one data state and one counter state, and every transition must move
// the phase by exactly −G·sgn(Φ + n_w) + n_r.
func TestEquationOneRecovery(t *testing.T) {
	h := 1.0 / 16
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: h, Mean: 0, Shape: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    h,
		TransitionDensity: 1, // a transition every bit: PD always active
		MaxRunLength:      0,
		EyeJitter:         dist.NewGaussian(0, 0.05),
		Drift:             drift,
		CounterLen:        1,
		Threshold:         0.5,
	}
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.D != 1 || m.C != 1 {
		t.Fatalf("D=%d C=%d, want 1/1", m.D, m.C)
	}
	// Every row: the support is {Φ − G + k·h} ∪ {Φ + G + k·h} clamped,
	// weighted by the sign probabilities and the drift.
	for mi := 0; mi < m.M; mi++ {
		phi := m.PhaseValue(mi)
		pLead := dist.TailAbove(spec.EyeJitter, -phi)
		cols, vals := m.P.Row(m.StateIndex(0, 0, mi))
		got := map[int]float64{}
		for k, c := range cols {
			got[c] += vals[k]
		}
		want := map[int]float64{}
		acc := func(baseShift int, w float64) {
			spec.Drift.Support(func(_ float64, k int, pk float64) {
				mj := mi + baseShift + k
				if mj < 0 {
					mj = 0
				}
				if mj >= m.M {
					mj = m.M - 1
				}
				want[m.StateIndex(0, 0, mj)] += w * pk
			})
		}
		acc(-1, pLead)   // sgn > 0: retard by G
		acc(+1, 1-pLead) // sgn ≤ 0: advance by G
		if len(got) != len(want) {
			t.Fatalf("phi=%g: support %d vs %d", phi, len(got), len(want))
		}
		for idx, w := range want {
			if math.Abs(got[idx]-w) > 1e-12 {
				t.Fatalf("phi=%g -> %d: %g vs %g", phi, idx, got[idx], w)
			}
		}
	}
}

// TestLargeModelSolve exercises a ~10^5-state model end to end. It runs
// only when CDRSTOCH_LARGE=1 to keep default test times sane; with
// CDRSTOCH_LARGE=1 and -timeout raised it demonstrates the paper's
// large-problem capability on commodity hardware.
func TestLargeModelSolve(t *testing.T) {
	if os.Getenv("CDRSTOCH_LARGE") != "1" {
		t.Skip("set CDRSTOCH_LARGE=1 to run the large-model solve")
	}
	h := 1.0 / 512
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0.0002, Shape: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		GridStep:          h,
		PhaseMax:          0.75,
		CorrectionStep:    1.0 / 16,
		TransitionDensity: 0.5,
		MaxRunLength:      4,
		EyeJitter:         dist.NewGaussian(0, 0.08),
		Drift:             drift,
		CounterLen:        8,
		Threshold:         0.5,
	}
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("large model: %d states, %d nnz, formed in %v", m.NumStates(), m.P.NNZ(), m.FormTime)
	a, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("solved: BER=%.3e cycles=%d in %v", a.BER, a.Multigrid.Cycles, a.SolveTime)
	if a.BER <= 0 || a.BER >= 1 {
		t.Fatalf("BER = %g", a.BER)
	}
}
