package core

import (
	"math"
	"testing"

	"cdrstoch/internal/dist"
)

// The wrap-model tests live here; the Monte Carlo cross-check lives in
// internal/bitsim to avoid an import cycle.

func wrapSpec(t testing.TB) Spec {
	t.Helper()
	s := tinySpec(t)
	s.WrapPhase = true
	s.Threshold = 0.5
	return s
}

func TestWrapSpecValidation(t *testing.T) {
	s := wrapSpec(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid wrap spec rejected: %v", err)
	}
	bad := s
	bad.GridStep = 1.0 / 10 // 10 cells per UI is fine; 1/0.3 is not
	bad.GridStep = 0.3
	if err := bad.Validate(); err == nil {
		t.Error("non-integer cell count accepted")
	}
	bad = s
	bad.Threshold = 0.6
	if err := bad.Validate(); err == nil {
		t.Error("threshold beyond half-UI accepted")
	}
}

func TestWrapModelGeometry(t *testing.T) {
	m, err := Build(wrapSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.M != 16 {
		t.Fatalf("M = %d, want 16 cells per UI", m.M)
	}
	if m.PhaseValue(m.mid) != 0 {
		t.Error("mid phase not zero")
	}
	if m.PhaseValue(0) != -0.5 {
		t.Errorf("lowest phase = %g, want -0.5", m.PhaseValue(0))
	}
	// PhaseIndex wraps: +0.5 aliases to −0.5.
	if m.PhaseIndex(0.5) != 0 {
		t.Errorf("PhaseIndex(0.5) = %d, want 0", m.PhaseIndex(0.5))
	}
	if m.PhaseIndex(-0.5-1.0/16) != m.M-1 {
		t.Errorf("wrap below: %d", m.PhaseIndex(-0.5-1.0/16))
	}
	if err := m.P.CheckStochastic(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestWrapModelErgodic(t *testing.T) {
	m, err := Build(wrapSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := m.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if !ch.IsErgodic() {
		t.Fatal("wrap model not ergodic")
	}
}

func TestWrapSlipRatePositive(t *testing.T) {
	m, err := Build(wrapSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	rate, mtbs, err := m.WrapSlipRate(pi)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || rate >= 1 {
		t.Fatalf("slip rate = %g", rate)
	}
	if math.Abs(mtbs-1/rate) > 1e-9*mtbs {
		t.Fatalf("MTBS inconsistent: %g vs %g", mtbs, 1/rate)
	}
}

func TestWrapSlipRateRejectsSaturatingModel(t *testing.T) {
	m := buildTiny(t)
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.WrapSlipRate(pi); err == nil {
		t.Error("saturating model accepted")
	}
}

// TestWrapVsSaturateLowNoise: with noise small enough that the boundary is
// rarely visited, wrap and saturating models agree on the BER.
func TestWrapVsSaturateLowNoise(t *testing.T) {
	sat := tinySpec(t)
	sat.EyeJitter = dist.NewGaussian(0, 0.03)
	wrp := sat
	wrp.WrapPhase = true
	mSat, err := Build(sat)
	if err != nil {
		t.Fatal(err)
	}
	mWrp, err := Build(wrp)
	if err != nil {
		t.Fatal(err)
	}
	piSat, err := mSat.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	piWrp, err := mWrp.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	bSat, bWrp := mSat.BER(piSat), mWrp.BER(piWrp)
	// The tiny model's coarse grid keeps some boundary traffic, so the two
	// boundary treatments retain a moderate residual difference; they must
	// nevertheless agree well within a factor of two.
	if rel := math.Abs(bSat-bWrp) / bSat; rel > 0.5 {
		t.Fatalf("wrap vs saturate BER: %g vs %g (rel %g)", bWrp, bSat, rel)
	}
}

// TestWrapSlipMatchesSaturateFlux: the wrap slip rate and the saturating
// model's entry flux into the slip set measure the same physical event and
// must agree within a small factor.
func TestWrapSlipMatchesSaturateFlux(t *testing.T) {
	sat := tinySpec(t)
	wrp := sat
	wrp.WrapPhase = true
	mSat, err := Build(sat)
	if err != nil {
		t.Fatal(err)
	}
	mWrp, err := Build(wrp)
	if err != nil {
		t.Fatal(err)
	}
	piSat, err := mSat.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	piWrp, err := mWrp.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	flux, err := mSat.SlipStats(piSat)
	if err != nil {
		t.Fatal(err)
	}
	rate, _, err := mWrp.WrapSlipRate(piWrp)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rate / flux.Flux
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("wrap rate %g vs saturate flux %g (ratio %g)", rate, flux.Flux, ratio)
	}
}

func TestWrapDescriptorMatchesDirect(t *testing.T) {
	m, err := Build(wrapSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BuildDescriptor()
	if err != nil {
		t.Fatal(err)
	}
	mat := d.ToCSR()
	for i := 0; i < m.NumStates(); i++ {
		cols, vals := m.P.Row(i)
		kcols, kvals := mat.Row(i)
		if len(cols) != len(kcols) {
			t.Fatalf("row %d nnz mismatch", i)
		}
		for k := range cols {
			if cols[k] != kcols[k] || math.Abs(vals[k]-kvals[k]) > 1e-12 {
				t.Fatalf("row %d entry %d mismatch", i, k)
			}
		}
	}
}
