package core

import (
	"fmt"
	"time"

	"cdrstoch/internal/dist"
	"cdrstoch/internal/kron"
	"cdrstoch/internal/spmat"
)

// Model is an assembled CDR Markov chain. State index layout is
// ((d·C)+c)·M + m with the phase index m fastest, so that consecutive
// discretized phase-error values are adjacent — the layout the multigrid
// pair-coarsening strategy relies on.
type Model struct {
	// Spec is the validated specification the model was built from.
	Spec Spec
	// D, C, M are the data, counter and phase-grid state counts.
	D, C, M int
	// P is the transition probability matrix over the full product space;
	// nil for a matrix-free model (BuildShell), whose transitions exist
	// only through Desc.
	P *spmat.CSR
	// Desc is the Kronecker descriptor backing a matrix-free model
	// (BuildShell); nil when the model was assembled explicitly (Build),
	// though SolveKron materializes one on demand for either form.
	Desc *kron.Descriptor
	// FormTime is the wall-clock time spent assembling P — the paper's
	// "Matrixformtime" annotation — or, for a matrix-free model, the
	// descriptor and wrap-tally formation time.
	FormTime time.Duration

	mid       int // phase index of Φ = 0
	corrSteps int // CorrectionStep expressed in grid steps
	// wrapSlip[i] is the probability that the transition leaving state i
	// wraps across the ±0.5 UI boundary (WrapPhase models only).
	wrapSlip []float64
}

// newShell validates the spec and sets up the model's dimensional frame —
// everything both the explicit (Build) and matrix-free (BuildShell)
// constructors share before choosing a transition backend.
func newShell(spec Spec) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		Spec:      spec,
		D:         spec.numData(),
		C:         spec.numCounter(),
		M:         spec.gridSize(),
		corrSteps: int(spec.CorrectionStep/spec.GridStep + 0.5),
	}
	if spec.WrapPhase {
		m.mid = m.M / 2
	} else {
		m.mid = (m.M - 1) / 2
	}
	return m, nil
}

// pdTables evaluates the phase-detector decision probabilities once per
// grid point. They depend only on the phase index, not on the data or
// counter state. On a data transition the PD emits LEAD when Φ + n_w > +δ,
// LAG when Φ + n_w ≤ −δ and NULL inside the dead zone |Φ + n_w| ≤ δ (δ = 0
// recovers the ideal signum detector). Deep-tail-safe evaluation keeps
// BER ~1e−14 distinguishable from zero.
func (m *Model) pdTables() (pLeadAt, pLagAt, pNullAt []float64) {
	pLeadAt = make([]float64, m.M)
	pLagAt = make([]float64, m.M)
	pNullAt = make([]float64, m.M)
	for mi := 0; mi < m.M; mi++ {
		pLeadAt[mi], pLagAt[mi], pNullAt[mi] = m.pdProbs(m.PhaseValue(mi))
	}
	return pLeadAt, pLagAt, pNullAt
}

// assemble walks every (data, counter, phase) state and scatters its
// surviving transition branches: into tr when non-nil (the explicit
// build), and in any case through addBranch's wrap-slip tally — which is
// how BuildShell obtains the WrapPhase slip probabilities without ever
// holding a triplet.
func (m *Model) assemble(tr *spmat.Triplet, drift *dist.PMF, pLeadAt, pLagAt, pNullAt []float64) {
	for d := 0; d < m.D; d++ {
		pt := m.Spec.transProb(d)
		dNoTrans := m.Spec.nextDataState(d, false)
		for c := 0; c < m.C; c++ {
			cLead, corrLead := m.counterStep(c, +1)
			cLag, corrLag := m.counterStep(c, -1)
			for mi := 0; mi < m.M; mi++ {
				from := m.StateIndex(d, c, mi)
				pLead, pLag, pNull := pLeadAt[mi], pLagAt[mi], pNullAt[mi]

				if w := 1 - pt; w > 0 {
					m.addBranch(tr, from, dNoTrans, c, mi, 0, w, drift)
				}
				if pt > 0 {
					if w := pt * pLead; w > 0 {
						m.addBranch(tr, from, 0, cLead, mi, corrLead, w, drift)
					}
					if w := pt * pLag; w > 0 {
						m.addBranch(tr, from, 0, cLag, mi, corrLag, w, drift)
					}
					if w := pt * pNull; w > 0 {
						m.addBranch(tr, from, 0, c, mi, 0, w, drift)
					}
				}
			}
		}
	}
}

// Build assembles the transition probability matrix from the spec.
func Build(spec Spec) (*Model, error) {
	m, err := newShell(spec)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	n := m.D * m.C * m.M
	if spec.WrapPhase {
		m.wrapSlip = make([]float64, n)
	}
	drift := spec.Drift.Trim()
	pLeadAt, pLagAt, pNullAt := m.pdTables()
	tr := spmat.NewTriplet(n, n)
	tr.Reserve(m.scatteredEntries(drift, pLeadAt, pLagAt, pNullAt))
	m.assemble(tr, drift, pLeadAt, pLagAt, pNullAt)
	p := tr.ToCSR()
	if err := p.CheckStochastic(1e-9); err != nil {
		return nil, fmt.Errorf("core: assembled TPM invalid: %w", err)
	}
	m.P = p
	m.FormTime = time.Since(start)
	return m, nil
}

// scatteredEntries counts the triplet entries assemble would scatter:
// each surviving branch contributes one entry per nonzero drift mass
// point. Build uses it to Reserve exactly (assembly never regrows);
// ExplicitEntries uses it to price an assembly that never happens.
func (m *Model) scatteredEntries(drift *dist.PMF, pLeadAt, pLagAt, pNullAt []float64) int {
	driftNNZ := 0
	drift.Support(func(float64, int, float64) { driftNNZ++ })
	entries := 0
	for d := 0; d < m.D; d++ {
		pt := m.Spec.transProb(d)
		branches := 0
		for mi := 0; mi < m.M; mi++ {
			if 1-pt > 0 {
				branches++
			}
			if pt > 0 {
				if pt*pLeadAt[mi] > 0 {
					branches++
				}
				if pt*pLagAt[mi] > 0 {
					branches++
				}
				if pt*pNullAt[mi] > 0 {
					branches++
				}
			}
		}
		entries += m.C * branches * driftNNZ
	}
	return entries
}

// ExplicitEntries counts the triplet entries an explicit Build of this
// model would scatter — an upper bound within a few percent of the final
// CSR's nnz (boundary clamping and wrap folding merge some duplicates).
// It runs the exact counting loop Build uses without allocating anything
// matrix-shaped, so a matrix-free shell can report what the assembly it
// avoided would have cost.
func (m *Model) ExplicitEntries() int {
	pLeadAt, pLagAt, pNullAt := m.pdTables()
	return m.scatteredEntries(m.Spec.Drift.Trim(), pLeadAt, pLagAt, pNullAt)
}

// BuildShell prepares a model for matrix-free analysis: the dimensional
// frame, the Kronecker descriptor, and (for WrapPhase models) the
// per-state wrap-slip tally — everything Build produces except the
// assembled TPM. Memory stays proportional to the component factors plus
// one state-sized vector for the tally; the product matrix never exists.
func BuildShell(spec Spec) (*Model, error) {
	m, err := newShell(spec)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if spec.WrapPhase {
		m.wrapSlip = make([]float64, m.D*m.C*m.M)
		pLeadAt, pLagAt, pNullAt := m.pdTables()
		m.assemble(nil, spec.Drift.Trim(), pLeadAt, pLagAt, pNullAt)
	}
	d, err := m.BuildDescriptor()
	if err != nil {
		return nil, err
	}
	m.Desc = d
	m.FormTime = time.Since(start)
	return m, nil
}

// addBranch accumulates one (data, counter, correction) branch across the
// drift PMF: Φ' = clamp(Φ + corr + n_r) in the saturating model, or
// Φ' = wrap(Φ + corr + n_r) in the wrap model, where boundary crossings
// are additionally tallied as cycle-slip probability.
func (m *Model) addBranch(tr *spmat.Triplet, from, d, c, mi, corrSteps int, w float64, drift *dist.PMF) {
	base := mi + corrSteps
	drift.Support(func(_ float64, k int, pk float64) {
		mj := base + k
		if m.Spec.WrapPhase {
			if mj < 0 || mj >= m.M {
				m.wrapSlip[from] += w * pk
				mj = ((mj % m.M) + m.M) % m.M
			}
		} else {
			if mj < 0 {
				mj = 0
			}
			if mj >= m.M {
				mj = m.M - 1
			}
		}
		if tr != nil {
			tr.Add(from, m.StateIndex(d, c, mj), w*pk)
		}
	})
}

// PDProbs returns the phase-detector decision probabilities at phase
// error phi for the given spec, honoring the dead zone:
// P(LEAD) = P(n_w > δ−Φ), P(LAG) = P(n_w ≤ −δ−Φ), P(NULL) the remaining
// dead-zone mass. Exported so model extensions (e.g. the second-order
// loop in internal/freqloop) share the exact decision arithmetic.
func PDProbs(s Spec, phi float64) (pLead, pLag, pNull float64) {
	delta := s.PDDeadZone
	pLead = dist.TailAbove(s.EyeJitter, delta-phi)
	pLag = dist.TailBelow(s.EyeJitter, -delta-phi)
	if delta > 0 {
		pNull = dist.TailBelow(s.EyeJitter, delta-phi) - dist.TailBelow(s.EyeJitter, -delta-phi)
		if pNull < 0 {
			pNull = 0
		}
	}
	return pLead, pLag, pNull
}

// pdProbs is the model-bound form of PDProbs.
func (m *Model) pdProbs(phi float64) (pLead, pLag, pNull float64) {
	return PDProbs(m.Spec, phi)
}

// CounterAdvance advances an up/down counter of overflow length l from
// state index cIdx (value cIdx − (l−1)) by dir ∈ {+1, −1}. It returns the
// successor index and the overflow direction: +1 when the counter hit +l
// (emit a retard-by-G correction), −1 when it hit −l (advance by G),
// 0 otherwise. Exported for model extensions.
func CounterAdvance(l, cIdx, dir int) (next, overflow int) {
	c := cIdx - (l - 1) + dir
	switch {
	case c >= l:
		return l - 1, +1
	case c <= -l:
		return l - 1, -1
	default:
		return c + (l - 1), 0
	}
}

// counterStep advances the up/down counter state index by dir ∈ {+1, −1}
// and returns the successor index together with the phase correction (in
// grid steps) emitted on overflow. The counter walks on c ∈ (−L, L); at ±L
// it emits ∓G and resets to zero.
func (m *Model) counterStep(cIdx, dir int) (next, corrSteps int) {
	next, overflow := CounterAdvance(m.Spec.CounterLen, cIdx, dir)
	return next, -overflow * m.corrSteps
}

// NumStates returns the size of the product state space D·C·M.
func (m *Model) NumStates() int { return m.D * m.C * m.M }

// StateIndex maps (data, counter, phase) coordinates to the global index.
func (m *Model) StateIndex(d, c, mi int) int { return (d*m.C+c)*m.M + mi }

// Coords inverts StateIndex.
func (m *Model) Coords(idx int) (d, c, mi int) {
	mi = idx % m.M
	idx /= m.M
	c = idx % m.C
	d = idx / m.C
	return d, c, mi
}

// PhaseValue returns the phase error in UI of grid index mi.
func (m *Model) PhaseValue(mi int) float64 {
	return float64(mi-m.mid) * m.Spec.GridStep
}

// PhaseIndex returns the grid index closest to phase value phi — clamped
// in the saturating model, reduced modulo one UI in the wrap model.
func (m *Model) PhaseIndex(phi float64) int {
	mi := m.mid + int(roundHalfAway(phi/m.Spec.GridStep))
	if m.Spec.WrapPhase {
		return ((mi % m.M) + m.M) % m.M
	}
	if mi < 0 {
		return 0
	}
	if mi >= m.M {
		return m.M - 1
	}
	return mi
}

func roundHalfAway(x float64) float64 {
	if x >= 0 {
		return float64(int(x + 0.5))
	}
	return -float64(int(-x + 0.5))
}

// CounterValue returns the signed counter value of counter index c.
func (m *Model) CounterValue(c int) int { return c - (m.Spec.CounterLen - 1) }

// LockedIndex returns the state index of the nominal locked point:
// run-length 0, counter 0, Φ = 0.
func (m *Model) LockedIndex() int {
	return m.StateIndex(0, m.Spec.CounterLen-1, m.mid)
}
