package core

import (
	"fmt"

	"cdrstoch/internal/dist"
	"cdrstoch/internal/fsm"
)

// Phase-detector output symbols.
const (
	pdLag  = 0
	pdNull = 1
	pdLead = 2
)

// Counter command symbols (phase correction requests).
const (
	cmdAdvance = 0 // counter underflow: advance phase by +G
	cmdNone    = 1
	cmdRetard  = 2 // counter overflow: retard phase by −G
)

// AsNetwork renders the model as an explicit four-FSM network with
// stochastic sources — the compositional structure of the paper's
// Figure 2. Because the fsm formalism needs finite alphabets, the
// continuous eye jitter is replaced by the supplied grid PMF nw; building
// the direct model with the same PMF as its EyeJitter law yields an
// identical chain (cross-validated in tests). The returned network is
// finalized and ready for BuildChain or DOT export.
func (m *Model) AsNetwork(nw *dist.PMF) (*fsm.Network, error) {
	if nw == nil {
		return nil, fmt.Errorf("core: discretized n_w PMF required")
	}
	drift := m.Spec.Drift.Trim()
	n := fsm.NewNetwork()

	// Stochastic sources: the bit-flip coin, the eye jitter and the
	// accumulating noise.
	if err := n.AddSource(&fsm.Source{
		Name: "bitflip",
		Prob: []float64{1 - m.Spec.TransitionDensity, m.Spec.TransitionDensity},
	}); err != nil {
		return nil, err
	}
	nwProb := make([]float64, nw.Len())
	copy(nwProb, nw.Prob)
	if err := n.AddSource(&fsm.Source{Name: "nw", Prob: nwProb}); err != nil {
		return nil, err
	}
	nrProb := make([]float64, drift.Len())
	copy(nrProb, drift.Prob)
	if err := n.AddSource(&fsm.Source{Name: "nr", Prob: nrProb}); err != nil {
		return nil, err
	}

	// Data source FSM: tracks the run length of identical bits and forces
	// a transition at the cap.
	spec := m.Spec
	data := &fsm.Machine{
		Name:      "data",
		NumStates: m.D,
		Inputs:    []fsm.Port{{Name: "flip", Size: 2}},
		OutSize:   2,
		Next: func(r int, in []int) int {
			return spec.nextDataState(r, dataTransition(spec, r, in[0]))
		},
		Out: func(r int, in []int) int {
			if dataTransition(spec, r, in[0]) {
				return 1
			}
			return 0
		},
		StateName: func(r int) string { return fmt.Sprintf("run%d", r) },
	}
	if err := n.AddMachine(data); err != nil {
		return nil, err
	}

	// Phase detector: memoryless; LAG/NULL/LEAD from the data transition
	// indicator and the sign of Φ + n_w.
	model := m
	pd := &fsm.Machine{
		Name:      "pd",
		NumStates: 1,
		Inputs: []fsm.Port{
			{Name: "trans", Size: 2},
			{Name: "nw", Size: nw.Len()},
			{Name: "phase", Size: m.M},
		},
		OutSize: 3,
		Next:    func(int, []int) int { return 0 },
		Out: func(_ int, in []int) int {
			if in[0] == 0 {
				return pdNull
			}
			v := model.PhaseValue(in[2]) + nw.Value(in[1])
			switch {
			case v > model.Spec.PDDeadZone:
				return pdLead
			case v <= -model.Spec.PDDeadZone:
				return pdLag
			default:
				return pdNull
			}
		},
	}
	if err := n.AddMachine(pd); err != nil {
		return nil, err
	}

	// Loop filter: up/down counter emitting a correction command on
	// overflow.
	counter := &fsm.Machine{
		Name:      "counter",
		NumStates: m.C,
		Inputs:    []fsm.Port{{Name: "pd", Size: 3}},
		OutSize:   3,
		Next: func(c int, in []int) int {
			next, _ := counterDecision(model, c, in[0])
			return next
		},
		Out: func(c int, in []int) int {
			_, cmd := counterDecision(model, c, in[0])
			return cmd
		},
		Initial:   m.Spec.CounterLen - 1,
		StateName: func(c int) string { return fmt.Sprintf("c%+d", model.CounterValue(c)) },
	}
	if err := n.AddMachine(counter); err != nil {
		return nil, err
	}

	// Phase error integrator: Moore (its quantized phase feeds back into
	// the PD, breaking the combinational loop exactly where the hardware
	// has a register).
	phase := &fsm.Machine{
		Name:      "phase",
		NumStates: m.M,
		Inputs: []fsm.Port{
			{Name: "cmd", Size: 3},
			{Name: "nr", Size: drift.Len()},
		},
		OutSize: m.M,
		Moore:   true,
		Next: func(mi int, in []int) int {
			next := mi + commandSteps(model, in[0]) + drift.MinK + in[1]
			if model.Spec.WrapPhase {
				return ((next % model.M) + model.M) % model.M
			}
			if next < 0 {
				return 0
			}
			if next >= model.M {
				return model.M - 1
			}
			return next
		},
		Out:       func(mi int, _ []int) int { return mi },
		Initial:   m.mid,
		StateName: func(mi int) string { return fmt.Sprintf("%+.4f", model.PhaseValue(mi)) },
	}
	if err := n.AddMachine(phase); err != nil {
		return nil, err
	}

	wires := []struct {
		machine, port string
		ep            fsm.Endpoint
	}{
		{"data", "flip", fsm.SourceOut("bitflip")},
		{"pd", "trans", fsm.MachineOut("data")},
		{"pd", "nw", fsm.SourceOut("nw")},
		{"pd", "phase", fsm.MachineOut("phase")},
		{"counter", "pd", fsm.MachineOut("pd")},
		{"phase", "cmd", fsm.MachineOut("counter")},
		{"phase", "nr", fsm.SourceOut("nr")},
	}
	for _, w := range wires {
		if err := n.Connect(w.machine, w.port, w.ep); err != nil {
			return nil, err
		}
	}
	if err := n.Finalize(); err != nil {
		return nil, err
	}
	return n, nil
}

// dataTransition reports whether a transition occurs in run-length state r
// given the coin outcome.
func dataTransition(s Spec, r, coin int) bool {
	if s.MaxRunLength > 0 && r == s.MaxRunLength-1 {
		return true
	}
	return coin == 1
}

// counterDecision advances the counter on a PD symbol and returns the next
// state and the correction command.
func counterDecision(m *Model, c, pdSym int) (next, cmd int) {
	switch pdSym {
	case pdNull:
		return c, cmdNone
	case pdLead:
		next, corr := m.counterStep(c, +1)
		if corr != 0 {
			return next, cmdRetard
		}
		return next, cmdNone
	default: // pdLag
		next, corr := m.counterStep(c, -1)
		if corr != 0 {
			return next, cmdAdvance
		}
		return next, cmdNone
	}
}

// commandSteps converts a correction command to grid steps.
func commandSteps(m *Model, cmd int) int {
	switch cmd {
	case cmdRetard:
		return -m.corrSteps
	case cmdAdvance:
		return +m.corrSteps
	default:
		return 0
	}
}
