// Package buildinfo exposes the module version and VCS revision the
// binary was built from, read once from debug.ReadBuildInfo. Services
// stamp it into health responses and startup banners so traces, bench
// snapshots, and postmortem dumps are attributable to a commit.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// start approximates process start: package init runs before main, so
// the error versus true exec time is negligible for uptime reporting.
var start = time.Now()

// StartTime returns when the process started (package-init time).
func StartTime() time.Time { return start }

// Uptime returns how long the process has been running.
func Uptime() time.Duration { return time.Since(start) }

// Info is the attribution record of a binary.
type Info struct {
	// Version is the main module version ("(devel)" for plain builds).
	Version string `json:"version"`
	// Revision is the VCS commit hash the build was made from; empty when
	// the toolchain had no VCS metadata (e.g. go test binaries).
	Revision string `json:"vcs_revision,omitempty"`
	// Time is the commit timestamp (RFC 3339), when known.
	Time string `json:"vcs_time,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"vcs_modified,omitempty"`
	// GoVersion is the toolchain that produced the binary.
	GoVersion string `json:"go_version"`
}

var get = sync.OnceValue(func() Info {
	info := Info{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
})

// Get returns the binary's build attribution. The lookup runs once; all
// calls share the cached record.
func Get() Info { return get() }

// ShortRevision returns the first 12 characters of the VCS revision, or
// "unknown" when the build carried none.
func ShortRevision() string {
	rev := Get().Revision
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev
}

// String renders a one-line banner: "version (revision, modified) go1.x".
func (i Info) String() string {
	rev := i.Revision
	if rev == "" {
		rev = "no vcs metadata"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Modified {
		rev += ", modified"
	}
	return fmt.Sprintf("%s (%s) %s", i.Version, rev, i.GoVersion)
}
