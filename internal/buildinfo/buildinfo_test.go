package buildinfo

import (
	"strings"
	"testing"
)

func TestGetIsStableAndPopulated(t *testing.T) {
	a, b := Get(), Get()
	if a != b {
		t.Errorf("Get not stable: %+v vs %+v", a, b)
	}
	if a.Version == "" {
		t.Error("version empty")
	}
	if !strings.HasPrefix(a.GoVersion, "go") {
		t.Errorf("go version = %q", a.GoVersion)
	}
}

func TestStringAndShortRevision(t *testing.T) {
	i := Info{Version: "v1.2.3", Revision: "0123456789abcdef0123", Modified: true, GoVersion: "go1.99"}
	s := i.String()
	for _, want := range []string{"v1.2.3", "0123456789ab", "modified", "go1.99"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "0123456789abc") {
		t.Errorf("String() = %q did not truncate the revision", s)
	}
	if got := ShortRevision(); got == "" {
		t.Error("ShortRevision empty")
	}
	if s := (Info{Version: "unknown", GoVersion: "go1.99"}).String(); !strings.Contains(s, "no vcs metadata") {
		t.Errorf("no-vcs String() = %q", s)
	}
}
