package pllsim

import (
	"errors"
	"math"
)

// Spectral and accumulation analyses of the characterized jitter, the
// standard presentations of recovered-clock quality ("There are also
// specifications on the recovered clock jitter"): a periodogram of the
// phase-jitter samples, and the N-cycle accumulated jitter curve that
// separates white phase noise (flat) from random-walk frequency noise
// (growing as √N until the loop bandwidth takes over).

// Periodogram estimates the one-sided power spectral density of samples
// taken at sampleRate (Hz) on nFreq linearly spaced frequencies in
// (0, sampleRate/2]. It returns the frequencies and the PSD in
// units²/Hz, using a direct Goertzel-style DFT per bin (no FFT needed at
// the bin counts used here).
func Periodogram(samples []float64, sampleRate float64, nFreq int) (freq, psd []float64, err error) {
	n := len(samples)
	if n < 8 {
		return nil, nil, errors.New("pllsim: too few samples for a periodogram")
	}
	if sampleRate <= 0 || nFreq < 1 {
		return nil, nil, errors.New("pllsim: bad periodogram parameters")
	}
	// Remove the mean so DC leakage does not swamp the low bins.
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(n)

	freq = make([]float64, nFreq)
	psd = make([]float64, nFreq)
	for b := 0; b < nFreq; b++ {
		f := sampleRate / 2 * float64(b+1) / float64(nFreq)
		freq[b] = f
		omega := 2 * math.Pi * f / sampleRate
		// Goertzel recurrence for the DFT coefficient at omega.
		coeff := 2 * math.Cos(omega)
		var s0, s1, s2 float64
		for _, x := range samples {
			s0 = (x - mean) + coeff*s1 - s2
			s2 = s1
			s1 = s0
		}
		power := s1*s1 + s2*s2 - coeff*s1*s2
		// One-sided PSD normalization: 2·|X|²/(fs·N).
		psd[b] = 2 * power / (sampleRate * float64(n))
	}
	return freq, psd, nil
}

// PhaseNoisePSD runs the periodogram on the result's jitter samples using
// the reference frequency as the sample rate.
func (r *Result) PhaseNoisePSD(refFreq float64, nFreq int) (freq, psd []float64, err error) {
	return Periodogram(r.Samples, refFreq, nFreq)
}

// AccumulatedJitter returns J(N) = RMS of (x[k+N] − x[k]) for each lag N
// in lags — the N-cycle (long-term) jitter curve. For white phase noise
// J(N) is flat at √2·RMS; for white frequency (random-walk phase) noise
// inside the loop bandwidth it grows like √N before the loop flattens it.
func AccumulatedJitter(samples []float64, lags []int) ([]float64, error) {
	if len(samples) < 2 {
		return nil, errors.New("pllsim: too few samples")
	}
	out := make([]float64, len(lags))
	for li, lag := range lags {
		if lag < 1 || lag >= len(samples) {
			return nil, errors.New("pllsim: lag outside sample span")
		}
		ss := 0.0
		n := len(samples) - lag
		for k := 0; k < n; k++ {
			d := samples[k+lag] - samples[k]
			ss += d * d
		}
		out[li] = math.Sqrt(ss / float64(n))
	}
	return out, nil
}

// AccumulatedJitter evaluates the curve on the result's samples.
func (r *Result) AccumulatedJitter(lags []int) ([]float64, error) {
	return AccumulatedJitter(r.Samples, lags)
}
