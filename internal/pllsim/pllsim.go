// Package pllsim is a behavioral simulator for the analog half of the CDR
// circuit of the paper's Figure 1: a charge-pump phase-locked loop — PFD,
// charge pump, passive RC loop filter, VCO with device noise, and a /N
// feedback divider — generating the multi-phase clock whose jitter feeds
// the digital phase-selection loop.
//
// The paper treats the internal clock jitter as an input characterized
// "using techniques covered elsewhere" and folds it into the stochastic
// model's noise sources. This package is that substrate: it simulates the
// loop at one update per reference cycle (the standard discrete-time
// charge-pump PLL approximation), extracts the steady-state phase-jitter
// samples of the output clock in UI, and quantizes them into a grid PMF
// (dist.FromSamples) that the CDR model accepts as an additional jitter
// contribution.
package pllsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cdrstoch/internal/dist"
)

// Params describes the charge-pump PLL.
type Params struct {
	// RefFreq is the crystal reference frequency in Hz.
	RefFreq float64
	// N is the feedback divider modulus; the output runs at N·RefFreq.
	N int
	// F0 is the VCO free-running frequency in Hz.
	F0 float64
	// Kvco is the VCO gain in Hz/V.
	Kvco float64
	// Ip is the charge-pump current in A.
	Ip float64
	// R and C form the series loop-filter zero; C2 is the ripple
	// capacitor (shunt pole). Farads and ohms.
	R, C, C2 float64
	// Mismatch is the fractional up/down charge-pump current mismatch
	// (a classic source of static phase offset and reference spurs).
	Mismatch float64
	// ResetPulse is the PFD reset-overlap pulse width as a fraction of
	// the reference period. During the overlap both pump currents are on,
	// so a mismatched pump injects net charge every cycle and the loop
	// settles at a compensating static phase error.
	ResetPulse float64
	// FMNoise is the RMS white frequency noise of the VCO per reference
	// cycle, in Hz (accumulating phase jitter — the random-walk
	// component).
	FMNoise float64
	// PMNoise is the RMS white phase noise added to each output phase
	// sample, in VCO cycles (non-accumulating).
	PMNoise float64
	// Seed seeds the noise generator.
	Seed int64
}

// DefaultParams returns a 155.52 MHz (SONET STM-1 line rate class) PLL:
// 19.44 MHz crystal, /8 divider, textbook filter values giving a loop
// bandwidth around 1 MHz with phase margin near 60°.
func DefaultParams() Params {
	return Params{
		RefFreq:    19.44e6,
		N:          8,
		F0:         150e6,
		Kvco:       50e6,
		Ip:         100e-6,
		R:          6.8e3,
		C:          220e-12,
		C2:         22e-12,
		Mismatch:   0.02,
		ResetPulse: 0.02,
		FMNoise:    40e3,
		PMNoise:    0.002,
		Seed:       1,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.RefFreq <= 0 || p.F0 <= 0 || p.Kvco <= 0 || p.Ip <= 0 {
		return errors.New("pllsim: frequencies, gain and current must be positive")
	}
	if p.N < 1 {
		return errors.New("pllsim: divider modulus must be >= 1")
	}
	if p.R <= 0 || p.C <= 0 || p.C2 < 0 {
		return errors.New("pllsim: filter components must be positive (C2 may be zero)")
	}
	if p.Mismatch < 0 || p.Mismatch >= 1 {
		return errors.New("pllsim: mismatch outside [0,1)")
	}
	if p.ResetPulse < 0 || p.ResetPulse >= 1 {
		return errors.New("pllsim: reset pulse outside [0,1)")
	}
	if p.FMNoise < 0 || p.PMNoise < 0 {
		return errors.New("pllsim: negative noise")
	}
	return nil
}

// Result reports a PLL characterization run.
type Result struct {
	// Samples holds the steady-state per-cycle output phase jitter in UI
	// of the output clock (deviation from the ideal N·RefFreq ramp, with
	// the static offset removed).
	Samples []float64
	// RMS and PkPk summarize the jitter samples.
	RMS, PkPk float64
	// CycleToCycle is the RMS of first differences (period jitter).
	CycleToCycle float64
	// StaticOffsetUI is the mean phase offset that was removed (driven by
	// charge-pump mismatch).
	StaticOffsetUI float64
	// MeanFreq is the average output frequency over the measured span.
	MeanFreq float64
	// LockCycles is the number of reference cycles discarded as the
	// acquisition transient.
	LockCycles int
}

// Simulate runs the PLL for the given number of reference cycles and
// characterizes the steady-state output jitter. The first 25% of cycles
// (at least 256) are treated as the acquisition transient and discarded.
func Simulate(p Params, cycles int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cycles < 1024 {
		return nil, fmt.Errorf("pllsim: need at least 1024 cycles, got %d", cycles)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	tRef := 1 / p.RefFreq
	fOut := float64(p.N) * p.RefFreq

	// Loop state: vC is the integrator (series capacitor) voltage, vCtrl
	// the ripple-filtered control voltage, phiOut the VCO phase in cycles,
	// phiErr the PFD phase error in reference cycles.
	var vC, vCtrl, phiOut float64
	phiRef := 0.0

	lock := cycles / 4
	if lock < 256 {
		lock = 256
	}
	samples := make([]float64, 0, cycles-lock)
	var firstPhi, lastPhi float64
	alpha := 1.0
	if p.C2 > 0 {
		// One-pole ripple filter with time constant R·C2 sampled at tRef.
		alpha = 1 - math.Exp(-tRef/(p.R*p.C2))
	}
	for k := 0; k < cycles; k++ {
		phiRef += 1 // reference advances one cycle per step
		phiDiv := phiOut / float64(p.N)
		phiErr := phiRef - phiDiv // in reference cycles

		// Tri-state PFD + charge pump: the pump is on for a fraction of
		// the period proportional to |phase error| (clipped to one full
		// period), with polarity from the error sign and up/down mismatch.
		on := math.Abs(phiErr)
		if on > 1 {
			on = 1
		}
		i := p.Ip
		if phiErr > 0 {
			i *= 1 + p.Mismatch
		} else {
			i = -i
		}
		// Reset-overlap: both pumps fire for ResetPulse·T; a mismatched up
		// pump leaves net charge Ip·Mismatch·ResetPulse·T behind.
		overlap := p.Ip * p.Mismatch * p.ResetPulse
		charge := (i*on + overlap) * tRef
		vC += charge / p.C
		instant := vC + (i*on+overlap)*p.R // resistor adds an instantaneous zero
		vCtrl += alpha * (instant - vCtrl)

		f := p.F0 + p.Kvco*vCtrl
		if p.FMNoise > 0 {
			f += rng.NormFloat64() * p.FMNoise
		}
		if f < 0 {
			return nil, errors.New("pllsim: VCO frequency went negative (loop unstable or mis-biased)")
		}
		phiOut += f * tRef

		if k >= lock {
			ideal := fOut * tRef * float64(k+1)
			jit := phiOut - ideal
			if p.PMNoise > 0 {
				jit += rng.NormFloat64() * p.PMNoise
			}
			samples = append(samples, jit)
			if len(samples) == 1 {
				firstPhi = phiOut
			}
			lastPhi = phiOut
		}
	}

	n := float64(len(samples))
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= n
	res := &Result{
		Samples:        samples,
		StaticOffsetUI: mean,
		LockCycles:     lock,
		MeanFreq:       (lastPhi - firstPhi) / (tRef * (n - 1)),
	}
	var ss, pk float64
	minV, maxV := math.Inf(1), math.Inf(-1)
	for i := range samples {
		samples[i] -= mean
		ss += samples[i] * samples[i]
		if samples[i] < minV {
			minV = samples[i]
		}
		if samples[i] > maxV {
			maxV = samples[i]
		}
	}
	pk = maxV - minV
	res.RMS = math.Sqrt(ss / n)
	res.PkPk = pk
	c2c := 0.0
	for i := 1; i < len(samples); i++ {
		d := samples[i] - samples[i-1]
		c2c += d * d
	}
	res.CycleToCycle = math.Sqrt(c2c / (n - 1))

	// Divergence check: a stable locked loop keeps the jitter bounded
	// well within a few UI; larger excursions mean the linear-range
	// approximation broke down.
	if res.PkPk > 8 {
		return nil, fmt.Errorf("pllsim: peak-to-peak jitter %.2f UI — loop failed to lock", res.PkPk)
	}
	return res, nil
}

// JitterPMF quantizes the jitter samples onto a phase grid for use as a
// clock-jitter contribution in the CDR model (the paper: "Once the
// internal clock jitter has been characterized … it can easily be captured
// in our models and analysis").
func (r *Result) JitterPMF(step float64, maxAbsK int) (*dist.PMF, error) {
	return dist.FromSamples(r.Samples, step, maxAbsK)
}
