package pllsim

import (
	"math"
	"math/rand"
	"testing"
)

func TestPeriodogramDetectsSinusoid(t *testing.T) {
	fs := 1000.0
	f0 := 125.0
	n := 4096
	samples := make([]float64, n)
	for k := range samples {
		samples[k] = math.Sin(2 * math.Pi * f0 * float64(k) / fs)
	}
	freq, psd, err := Periodogram(samples, fs, 100)
	if err != nil {
		t.Fatal(err)
	}
	peak, peakF := 0.0, 0.0
	for i, p := range psd {
		if p > peak {
			peak, peakF = p, freq[i]
		}
	}
	if math.Abs(peakF-f0) > fs/2/100 {
		t.Fatalf("peak at %g Hz, want %g", peakF, f0)
	}
	// The peak must dominate distant bins by orders of magnitude.
	far := psd[10] // 55 Hz
	if peak < 1e4*far {
		t.Fatalf("peak %g vs background %g", peak, far)
	}
}

func TestPeriodogramWhiteNoiseFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 15
	sigma := 0.7
	samples := make([]float64, n)
	for k := range samples {
		samples[k] = sigma * rng.NormFloat64()
	}
	fs := 1.0
	freq, psd, err := Periodogram(samples, fs, 32)
	if err != nil {
		t.Fatal(err)
	}
	_ = freq
	// White noise PSD level = sigma² / (fs/2) one-sided = 2·sigma²/fs.
	want := 2 * sigma * sigma / fs
	mean := 0.0
	for _, p := range psd {
		mean += p
	}
	mean /= float64(len(psd))
	if math.Abs(mean-want) > 0.3*want {
		t.Fatalf("white PSD mean %g, want ~%g", mean, want)
	}
}

func TestPeriodogramValidation(t *testing.T) {
	if _, _, err := Periodogram([]float64{1, 2}, 1, 4); err == nil {
		t.Error("too-short input accepted")
	}
	if _, _, err := Periodogram(make([]float64, 64), 0, 4); err == nil {
		t.Error("zero rate accepted")
	}
	if _, _, err := Periodogram(make([]float64, 64), 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestAccumulatedJitterWhitePM(t *testing.T) {
	// Pure white phase noise: J(N) = √2·sigma for all N.
	rng := rand.New(rand.NewSource(2))
	sigma := 0.01
	samples := make([]float64, 1<<15)
	for k := range samples {
		samples[k] = sigma * rng.NormFloat64()
	}
	j, err := AccumulatedJitter(samples, []int{1, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt2 * sigma
	for i, v := range j {
		if math.Abs(v-want) > 0.1*want {
			t.Fatalf("J[%d] = %g, want ~%g", i, v, want)
		}
	}
}

func TestAccumulatedJitterRandomWalk(t *testing.T) {
	// Pure random walk: J(N) = sigma·√N.
	rng := rand.New(rand.NewSource(3))
	sigma := 0.01
	samples := make([]float64, 1<<15)
	acc := 0.0
	for k := range samples {
		acc += sigma * rng.NormFloat64()
		samples[k] = acc
	}
	j, err := AccumulatedJitter(samples, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if r := j[1] / j[0]; math.Abs(r-2) > 0.3 {
		t.Fatalf("J(4)/J(1) = %g, want ~2", r)
	}
	if r := j[2] / j[0]; math.Abs(r-4) > 0.8 {
		t.Fatalf("J(16)/J(1) = %g, want ~4", r)
	}
}

func TestAccumulatedJitterValidation(t *testing.T) {
	if _, err := AccumulatedJitter([]float64{1}, []int{1}); err == nil {
		t.Error("too-short input accepted")
	}
	if _, err := AccumulatedJitter(make([]float64, 16), []int{0}); err == nil {
		t.Error("zero lag accepted")
	}
	if _, err := AccumulatedJitter(make([]float64, 16), []int{16}); err == nil {
		t.Error("out-of-span lag accepted")
	}
}

// TestPLLJitterAccumulationFlattens: inside a locked PLL, white FM noise
// accumulates over short spans but the loop bounds it: J(N) must stop
// growing well before N → ∞.
func TestPLLJitterAccumulationFlattens(t *testing.T) {
	p := DefaultParams()
	p.FMNoise = 150e3
	p.PMNoise = 0
	res, err := Simulate(p, 60000)
	if err != nil {
		t.Fatal(err)
	}
	j, err := res.AccumulatedJitter([]int{1, 8, 512, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if j[1] <= j[0] {
		t.Fatalf("short-span jitter does not accumulate: J(1)=%g J(8)=%g", j[0], j[1])
	}
	// Plateau: beyond the loop time constant the curve stops growing.
	if j[3] > 1.5*j[2] {
		t.Fatalf("long-span jitter keeps growing: J(512)=%g J(2048)=%g", j[2], j[3])
	}
}

// TestPLLSpectrumShape: white VCO frequency noise produces 1/f² phase
// noise; the loop's error transfer high-passes it, leaving a flat plateau
// below the loop corner and the residual 1/f² roll-off above it. The
// measured output-jitter PSD must therefore fall from the low bins to the
// mid/high bins.
func TestPLLSpectrumShape(t *testing.T) {
	p := DefaultParams()
	p.FMNoise = 150e3
	p.PMNoise = 0
	res, err := Simulate(p, 120000)
	if err != nil {
		t.Fatal(err)
	}
	_, psd, err := res.PhaseNoisePSD(p.RefFreq, 64)
	if err != nil {
		t.Fatal(err)
	}
	lo, mid := 0.0, 0.0
	for i := 0; i < 8; i++ {
		lo += psd[i]
	}
	for i := 24; i < 32; i++ {
		mid += psd[i]
	}
	if lo <= 5*mid {
		t.Fatalf("expected roll-off above the loop corner: lo %g vs mid %g", lo/8, mid/8)
	}
}
