package pllsim

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.RefFreq = 0 },
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.F0 = -1 },
		func(p *Params) { p.Kvco = 0 },
		func(p *Params) { p.Ip = 0 },
		func(p *Params) { p.R = 0 },
		func(p *Params) { p.C = 0 },
		func(p *Params) { p.C2 = -1 },
		func(p *Params) { p.Mismatch = -0.1 },
		func(p *Params) { p.Mismatch = 1 },
		func(p *Params) { p.FMNoise = -1 },
		func(p *Params) { p.PMNoise = -1 },
	}
	for i, f := range mutations {
		p := DefaultParams()
		f(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSimulateRejectsShortRuns(t *testing.T) {
	if _, err := Simulate(DefaultParams(), 100); err == nil {
		t.Fatal("short run accepted")
	}
}

func TestNoiselessLoopLocks(t *testing.T) {
	p := DefaultParams()
	p.FMNoise = 0
	p.PMNoise = 0
	p.Mismatch = 0
	res, err := Simulate(p, 20000)
	if err != nil {
		t.Fatal(err)
	}
	fOut := float64(p.N) * p.RefFreq
	if rel := math.Abs(res.MeanFreq-fOut) / fOut; rel > 1e-3 {
		t.Fatalf("mean frequency off by %.2e (got %.6g, want %.6g)", rel, res.MeanFreq, fOut)
	}
	// Without noise the steady-state jitter collapses to the deterministic
	// limit-cycle ripple, far below 0.05 UI for this loop.
	if res.RMS > 0.05 {
		t.Fatalf("noiseless RMS jitter %.4g UI", res.RMS)
	}
}

func TestNoiseIncreasesJitter(t *testing.T) {
	quiet := DefaultParams()
	quiet.FMNoise = 0
	quiet.PMNoise = 0
	noisy := DefaultParams()
	noisy.FMNoise = 200e3
	rq, err := Simulate(quiet, 20000)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Simulate(noisy, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if rn.RMS <= rq.RMS {
		t.Fatalf("noise did not increase jitter: %g vs %g", rn.RMS, rq.RMS)
	}
	if rn.PkPk <= 0 || rn.CycleToCycle <= 0 {
		t.Error("degenerate jitter statistics")
	}
}

func TestMismatchCreatesStaticOffset(t *testing.T) {
	p := DefaultParams()
	p.FMNoise = 0
	p.PMNoise = 0
	p.Mismatch = 0.1
	res, err := Simulate(p, 20000)
	if err != nil {
		t.Fatal(err)
	}
	noOff := p
	noOff.Mismatch = 0
	ref, err := Simulate(noOff, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.StaticOffsetUI-ref.StaticOffsetUI) < 1e-4 {
		t.Fatalf("mismatch did not move the static offset: %.9f vs %.9f",
			res.StaticOffsetUI, ref.StaticOffsetUI)
	}
}

func TestUnstableLoopDetected(t *testing.T) {
	p := DefaultParams()
	p.Ip = 1 // absurd pump current: loop gain far beyond stability
	p.Kvco = 5e9
	if _, err := Simulate(p, 5000); err == nil {
		t.Fatal("unstable loop not detected")
	}
}

func TestReproducibleWithSeed(t *testing.T) {
	p := DefaultParams()
	a, err := Simulate(p, 8000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if a.RMS != b.RMS || a.PkPk != b.PkPk {
		t.Fatal("same seed produced different results")
	}
	p.Seed = 99
	c, err := Simulate(p, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if c.RMS == a.RMS {
		t.Fatal("different seed produced identical jitter")
	}
}

func TestJitterPMF(t *testing.T) {
	res, err := Simulate(DefaultParams(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	pmf, err := res.JitterPMF(1.0/64, 16)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range pmf.Prob {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("PMF mass %g", sum)
	}
	// The PMF std should be in the ballpark of the sample RMS (quantization
	// adds at most ~one grid step).
	if d := math.Abs(pmf.Std() - res.RMS); d > 1.0/64 {
		t.Fatalf("PMF std %g vs sample RMS %g", pmf.Std(), res.RMS)
	}
}
