package cdrstoch

// The benchmark harness: one benchmark (family) per table/figure of the
// paper's evaluation, as indexed in DESIGN.md §3. Absolute times differ
// from the paper's 1999 workstation, but each benchmark regenerates the
// corresponding artifact's data: run with -v or use cmd/cdranalyze and
// cmd/cdrsweep for the annotated/tabulated output. EXPERIMENTS.md records
// representative results.

import (
	"context"
	"fmt"
	"testing"

	"cdrstoch/internal/bitsim"
	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/lump"
	"cdrstoch/internal/markov"
	"cdrstoch/internal/multigrid"
	"cdrstoch/internal/passage"
	"cdrstoch/internal/spmat"
	"cdrstoch/internal/sweep"
)

// buildOrFatal builds a model for benchmarking.
func buildOrFatal(b *testing.B, spec core.Spec) *core.Model {
	b.Helper()
	m, err := core.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFig3MatrixForm measures TPM assembly for the baseline model —
// the paper's "Matrixformtime" annotation and the generator of Figure 3's
// nonzero pattern (render it with cmd/tpmspy).
func BenchmarkFig3MatrixForm(b *testing.B) {
	spec := experiments.BaseSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := core.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.P.NNZ()), "nnz")
	}
}

// benchPanel solves one figure panel per iteration and reports the BER so
// the benchmark output doubles as the figure's headline number.
func benchPanel(b *testing.B, spec core.Spec) {
	m := buildOrFatal(b, spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := m.Solve(core.SolveOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.BER, "BER")
		b.ReportMetric(float64(a.Multigrid.Cycles), "cycles")
	}
}

// BenchmarkFig4 regenerates the two panels of Figure 4: stationary
// phase-error analysis at low vs 4× eye jitter, counter length 8.
func BenchmarkFig4LowNoise(b *testing.B)  { benchPanel(b, experiments.Fig4Spec(false)) }
func BenchmarkFig4HighNoise(b *testing.B) { benchPanel(b, experiments.Fig4Spec(true)) }

// BenchmarkFig5 regenerates the three panels of Figure 5: BER vs counter
// overflow length at fixed noise, with the optimum at length 8.
func BenchmarkFig5Counter2(b *testing.B)  { benchPanel(b, experiments.Fig5Spec(2)) }
func BenchmarkFig5Counter8(b *testing.B)  { benchPanel(b, experiments.Fig5Spec(8)) }
func BenchmarkFig5Counter32(b *testing.B) { benchPanel(b, experiments.Fig5Spec(32)) }

// sweepFig5Sigmas is a smooth eye-jitter family around the Figure 5
// operating point: pattern-identical TPMs whose solutions drift slowly,
// the regime every published sweep in the paper runs in (a bathtub or
// jitter-tolerance curve samples an axis like this at comparable
// density).
func sweepFig5Sigmas() []float64 {
	sigmas := make([]float64, 20)
	for i := range sigmas {
		sigmas[i] = 0.080 + 0.001*float64(i)
	}
	return sigmas
}

// BenchmarkSweepFig5 measures sweep throughput: one op is the full
// 20-point noise sweep of the Figure 5 counter-8 model. "pointwise" is the
// historical path — every point rebuilds the lumping plans, transposes,
// and multigrid hierarchy and solves cold with W-cycles. "batch" runs the
// same points through one sweep.Session: symbolic setup built once and
// value-refreshed, each point's solve seeded from its neighbor and run
// with cheap V-cycles. Both converge to the same 1e-12 tolerance, and the
// batch run cross-checks its BERs against the pointwise reference; the
// ns/op ratio is the sweep speedup, the cycles metrics show where it
// comes from.
func BenchmarkSweepFig5(b *testing.B) {
	base := experiments.Fig5Spec(8)
	sigmas := sweepFig5Sigmas()
	specAt := func(sig float64) core.Spec {
		s := base
		s.EyeJitter = dist.NewGaussian(0, sig)
		return s
	}
	// refBER carries the pointwise BERs into the batch sub-benchmark's
	// accuracy check (sub-benchmarks run in declaration order; under a
	// -bench filter selecting only "batch" the check is skipped).
	var refBER []float64
	b.Run("pointwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var cycles int64
			bers := make([]float64, 0, len(sigmas))
			for _, sig := range sigmas {
				m := buildOrFatal(b, specAt(sig))
				a, err := m.Solve(core.SolveOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if !a.Multigrid.Converged {
					b.Fatalf("stdnw %g unconverged: %v", sig, a.Multigrid)
				}
				cycles += int64(a.Multigrid.Cycles)
				bers = append(bers, a.BER)
			}
			refBER = bers
			b.ReportMetric(float64(cycles), "cycles")
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess := sweep.New(sweep.Options{})
			bers := make([]float64, 0, len(sigmas))
			for _, sig := range sigmas {
				pt, err := sess.Solve(context.Background(), specAt(sig))
				if err != nil {
					b.Fatalf("stdnw %g: %v", sig, err)
				}
				bers = append(bers, pt.Analysis.BER)
			}
			st := sess.Stats()
			b.ReportMetric(float64(st.Cycles), "cycles")
			b.ReportMetric(float64(st.WarmStarted), "warm")
			if refBER != nil {
				for j := range refBER {
					d := refBER[j] - bers[j]
					if d < 0 {
						d = -d
					}
					if d > 1e-9*(refBER[j]+1e-300) {
						b.Fatalf("stdnw %g: batch BER %g vs pointwise %g",
							sigmas[j], bers[j], refBER[j])
					}
				}
			}
		}
	})
}

// BenchmarkSolverComparison is experiment T1 (§Numerical Methods): the
// classical iterations against the multilevel solver on the refined-grid
// model where phase diffusion is slow.
func BenchmarkSolverComparison(b *testing.B) {
	spec, err := experiments.ScaledSpec(2)
	if err != nil {
		b.Fatal(err)
	}
	m := buildOrFatal(b, spec)
	ch, err := m.Chain()
	if err != nil {
		b.Fatal(err)
	}
	const tol = 1e-10
	b.Run("power", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ch.StationaryPower(markov.Options{Tol: tol, MaxIter: 200000, Damping: 0.95})
			if err != nil || !res.Converged {
				b.Fatalf("power: %v %v", err, res)
			}
			b.ReportMetric(float64(res.Iterations), "sweeps")
		}
	})
	b.Run("jacobi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ch.StationaryJacobi(markov.Options{Tol: tol, MaxIter: 200000, Damping: 0.8})
			if err != nil || !res.Converged {
				b.Fatalf("jacobi: %v %v", err, res)
			}
			b.ReportMetric(float64(res.Iterations), "sweeps")
		}
	})
	b.Run("gauss-seidel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ch.StationaryGaussSeidel(markov.Options{Tol: tol, MaxIter: 200000})
			if err != nil || !res.Converged {
				b.Fatalf("gs: %v %v", err, res)
			}
			b.ReportMetric(float64(res.Iterations), "sweeps")
		}
	})
	b.Run("multigrid-w", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parts, err := m.Hierarchy(4)
			if err != nil {
				b.Fatal(err)
			}
			s, err := multigrid.New(m.P, parts,
				multigrid.Config{Tol: tol, PreSmooth: 2, PostSmooth: 2, Cycle: multigrid.WCycle})
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Solve(nil)
			if err != nil || !res.Converged {
				b.Fatalf("mg: %v %v", err, res)
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
		}
	})
}

// BenchmarkStationary is the allocation baseline for the observability
// layer: the classical stationary solvers on the baseline model with
// tracing disabled (zero-value markov.Options, nil Tracer). Run with
// -benchmem; the obs probes must add no allocations on this path, so the
// allocs/op here should match a build without internal/obs entirely.
func BenchmarkStationary(b *testing.B) {
	m := buildOrFatal(b, experiments.BaseSpec())
	ch, err := m.Chain()
	if err != nil {
		b.Fatal(err)
	}
	const tol = 1e-8
	b.Run("power", func(b *testing.B) {
		// Untimed warm-up so the chain's lazily built structures (the
		// cached transpose CSR) are charged to setup, not to op 1 —
		// at cdrbench's -benchtime 1x the first call IS the whole
		// measurement, and the alloc gates need it stable.
		if _, err := ch.StationaryPower(markov.Options{Tol: tol, MaxIter: 100000, Damping: 0.95}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ch.StationaryPower(markov.Options{Tol: tol, MaxIter: 100000, Damping: 0.95})
			if err != nil || !res.Converged {
				b.Fatalf("power: %v %v", err, res)
			}
			b.ReportMetric(float64(res.Iterations), "sweeps")
		}
	})
	b.Run("gauss-seidel", func(b *testing.B) {
		if _, err := ch.StationaryGaussSeidel(markov.Options{Tol: tol, MaxIter: 100000}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ch.StationaryGaussSeidel(markov.Options{Tol: tol, MaxIter: 100000})
			if err != nil || !res.Converged {
				b.Fatalf("gs: %v %v", err, res)
			}
			b.ReportMetric(float64(res.Iterations), "sweeps")
		}
	})
	// The solver loop itself, one power sweep per op on warm buffers: this
	// is the kernel every iterative solve repeats, and after warmup it must
	// report 0 allocs/op at any worker-team width.
	benchSweep := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			pool := spmat.NewPool(workers)
			defer pool.Close()
			n := m.NumStates()
			x := make([]float64, n)
			y := make([]float64, n)
			for i := range x {
				x[i] = 1 / float64(n)
			}
			pool.VecMul(m.P, y, x) // warm the transpose cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.VecMul(m.P, y, x)
				x, y = y, x
			}
		}
	}
	b.Run("sweep-serial", benchSweep(1))
	b.Run("sweep-parallel", benchSweep(0))
}

// BenchmarkSolverScaling shows the paper's scaling claim: multigrid cycle
// counts stay level as the grid refines while classical sweeps grow.
func BenchmarkSolverScaling(b *testing.B) {
	for _, refine := range []int{1, 2, 4} {
		spec, err := experiments.ScaledSpec(refine)
		if err != nil {
			b.Fatal(err)
		}
		m := buildOrFatal(b, spec)
		name := map[int]string{1: "grid64", 2: "grid128", 4: "grid256"}[refine]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := m.Solve(core.SolveOptions{Multigrid: multigrid.Config{Tol: 1e-10}})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(a.Multigrid.Cycles), "cycles")
				b.ReportMetric(float64(m.NumStates()), "states")
			}
		})
	}
}

// BenchmarkSlipMTBF is experiment T2: the mean time between cycle slips
// via the stationary entry flux (scalable) and via dense first passage
// (exact reference).
func BenchmarkSlipMTBF(b *testing.B) {
	spec := experiments.Fig5Spec(8)
	m := buildOrFatal(b, spec)
	a, err := m.Solve(core.SolveOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("flux", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := m.SlipStats(a.Pi)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MeanTimeBetween, "bits-between-slips")
		}
	})
	b.Run("dense-first-passage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			times, err := passage.HittingTimesDense(m.P, m.SlipSet())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(times[m.LockedIndex()], "bits-to-first-slip")
		}
	})
}

// BenchmarkMonteCarloBER is experiment T3: the per-bit cost of the
// simulation baseline, from which the infeasibility of 1e-12 BER
// verification follows (see examples/mcvalidate).
func BenchmarkMonteCarloBER(b *testing.B) {
	spec := experiments.Fig4Spec(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bitsim.Run(bitsim.Config{Spec: spec, Bits: 200000, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BER, "BER-estimate")
	}
}

// BenchmarkKronVsExplicit is the storage-representation ablation the paper
// motivates ("hierarchical Kronecker algebra … makes it possible to
// manipulate and store P even when the total state space is very large"):
// one x·P product via the 5-term Kronecker descriptor against the explicit
// CSR matrix.
func BenchmarkKronVsExplicit(b *testing.B) {
	m := buildOrFatal(b, experiments.BaseSpec())
	d, err := m.BuildDescriptor()
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.NumStates())
	for i := range x {
		x[i] = 1 / float64(len(x))
	}
	y := make([]float64, len(x))
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.P.VecMul(y, x)
		}
		b.ReportMetric(float64(m.P.NNZ()*8*2), "approx-bytes")
	})
	b.Run("kron", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.VecMul(y, x)
		}
	})
}

// BenchmarkKronStationary is the headline matrix-free solve benchmark:
// the complete stationary analysis (build + multigrid solve) through the
// explicit CSR backend against the Kronecker-descriptor backend on the
// same Figure 5 spec at growing counter size. Both converge to the same
// tolerance; the matrix-bytes metric is the transition storage each
// backend actually held, which is where the descriptor wins — it grows
// with the component factors, not with their product.
func BenchmarkKronStationary(b *testing.B) {
	for _, counter := range []int{8, 32} {
		spec := experiments.Fig5Spec(counter)
		b.Run(fmt.Sprintf("explicit/counter%d", counter), func(b *testing.B) {
			m := buildOrFatal(b, spec)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := m.Solve(core.SolveOptions{})
				if err != nil || !a.Multigrid.Converged {
					b.Fatalf("explicit: %v", err)
				}
				b.ReportMetric(float64(a.Multigrid.Cycles), "cycles")
			}
			b.ReportMetric(float64(m.NumStates()), "states")
			b.ReportMetric(float64(m.P.MemoryBytes()), "matrix-bytes")
		})
		b.Run(fmt.Sprintf("kron/counter%d", counter), func(b *testing.B) {
			m, err := core.BuildShell(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := m.SolveKron(core.SolveOptions{})
				if err != nil || !a.Multigrid.Converged {
					b.Fatalf("kron: %v", err)
				}
				b.ReportMetric(float64(a.Multigrid.Cycles), "cycles")
			}
			b.ReportMetric(float64(m.NumStates()), "states")
			b.ReportMetric(float64(m.Desc.MemoryBytes()), "matrix-bytes")
		})
	}
}

// BenchmarkGTHCoarsest measures the direct solve used at the bottom of the
// multigrid hierarchy.
func BenchmarkGTHCoarsest(b *testing.B) {
	m := buildOrFatal(b, experiments.BaseSpec())
	parts, err := m.Hierarchy(4)
	if err != nil {
		b.Fatal(err)
	}
	// Lump all the way down with uniform weights to obtain a coarsest-size
	// stochastic matrix.
	p := m.P
	for _, part := range parts {
		x := make([]float64, part.NumStates())
		for i := range x {
			x[i] = 1
		}
		lumped, err := lump.Lump(p, part, x)
		if err != nil {
			b.Fatal(err)
		}
		p = lumped
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spmat.StationaryGTHCSR(p); err != nil {
			b.Fatal(err)
		}
	}
}
