package cdrstoch

// End-to-end integration test: one pass through the whole pipeline the
// way a user would drive it — spec → build → structural checks → solve →
// every performance measure → alternative backends → serialization. Each
// stage's output feeds the next, so a regression anywhere in the stack
// surfaces here even if the unit tests of the neighboring package missed
// it.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cdrstoch/internal/bitsim"
	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/kron"
	"cdrstoch/internal/pdd"
	"cdrstoch/internal/spmat"
)

func TestEndToEndPipeline(t *testing.T) {
	// A mid-sized model: large enough to exercise the multigrid hierarchy,
	// small enough for the dense cross-checks.
	h := 1.0 / 32
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0.0005, Shape: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{
		GridStep:          h,
		PhaseMax:          0.625,
		CorrectionStep:    1.0 / 16,
		TransitionDensity: 0.5,
		MaxRunLength:      4,
		EyeJitter:         dist.NewGaussian(0, 0.08),
		Drift:             drift,
		CounterLen:        4,
		Threshold:         0.5,
	}

	// Build and structure.
	m, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := m.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if !ch.IsErgodic() {
		t.Fatal("model not ergodic")
	}

	// Multigrid solve cross-checked against GTH and GMRES.
	a, err := m.Solve(core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(a.Pi[i]-ref[i]) > 1e-9 {
			t.Fatalf("multigrid vs GTH at %d: %g vs %g", i, a.Pi[i], ref[i])
		}
	}

	// Measures: all finite, consistent probabilities.
	if a.BER <= 0 || a.BER >= 1 {
		t.Fatalf("BER = %g", a.BER)
	}
	slip, err := m.SlipStats(a.Pi)
	if err != nil || slip.Flux <= 0 {
		t.Fatalf("slip: %v %+v", err, slip)
	}
	open, err := m.EyeOpening(a.Pi, 100*a.BER)
	if err != nil || open <= 0 {
		t.Fatalf("eye: %v %g", err, open)
	}
	fer, err := m.FrameErrorRate(a.Pi, 1024)
	if err != nil || fer <= a.BER || fer >= 1 {
		t.Fatalf("FER: %v %g (BER %g)", err, fer, a.BER)
	}
	psd, err := m.PhaseNoiseSpectrum(a.Pi, 256, []float64{0.01, 0.5})
	if err != nil || psd[0] <= psd[1] {
		t.Fatalf("spectrum: %v %v", err, psd)
	}

	// Kronecker backend agrees on the stationary vector.
	d, err := m.BuildDescriptor()
	if err != nil {
		t.Fatal(err)
	}
	kres, err := d.StationaryPower(kron.PowerOptions{Tol: 1e-11, MaxIter: 200000, Damping: 0.9})
	if err != nil {
		t.Fatalf("kron power: %v", err)
	}
	for i := range ref {
		if math.Abs(kres.Pi[i]-ref[i]) > 1e-7 {
			t.Fatalf("kron vs GTH at %d: %g vs %g", i, kres.Pi[i], ref[i])
		}
	}

	// Matrix-free end to end: shell build + implicit multigrid reproduces
	// the explicit analysis without ever forming the TPM.
	shell, err := core.BuildShell(spec)
	if err != nil {
		t.Fatal(err)
	}
	ka, err := shell.SolveKron(core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(ka.Pi[i]-ref[i]) > 1e-9 {
			t.Fatalf("SolveKron vs GTH at %d: %g vs %g", i, ka.Pi[i], ref[i])
		}
	}

	// Monte Carlo agrees within its interval.
	mc, err := bitsim.RunParallel(bitsim.Config{Spec: spec, Bits: 600000, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	half := (mc.CIHigh - mc.CILow) / 2
	if math.Abs(mc.BER-a.BER) > 3*half {
		t.Fatalf("MC %.3e vs analysis %.3e (±%.1e)", mc.BER, a.BER, half)
	}

	// Serialization round trip of the TPM.
	var buf bytes.Buffer
	if err := m.P.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := spmat.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.P.NNZ() {
		t.Fatalf("round trip nnz %d vs %d", back.NNZ(), m.P.NNZ())
	}

	// Decision-diagram compression of the stationary vector.
	diag, err := pdd.FromVector(a.Pi, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if s := diag.Sum(); math.Abs(s-1) > 1e-9 {
		t.Fatalf("diagram mass %g", s)
	}

	// Figure-panel rendering produces the paper's annotation format.
	panel := &experiments.Panel{Model: m, Analysis: a, Slip: slip}
	var ann bytes.Buffer
	if err := panel.Annotate(&ann); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ann.String(), "COUNTER: 4") {
		t.Fatalf("annotation: %q", ann.String())
	}
}
