// Package cdrstoch reproduces "Stochastic Modeling and Performance
// Evaluation for Digital Clock and Data Recovery Circuits" (Demir &
// Feldmann, Bell Laboratories, DATE 2000): a non-Monte-Carlo method that
// models a CDR circuit's digital phase-selection loop as a network of
// finite state machines with stochastic inputs, analyzes the resulting
// Markov chain with a dedicated multi-level aggregation (multigrid)
// solver, and derives bit-error rates and cycle-slip statistics that are
// far below anything direct simulation could resolve.
//
// The library lives under internal/ (this module is self-contained):
//
//   - internal/core       — the CDR stochastic model (the paper's contribution)
//   - internal/markov     — Markov-chain analysis, classical solvers, GMRES,
//     transient/survival analysis, spectra, censoring, sensitivities
//   - internal/multigrid  — the multilevel aggregation solver
//   - internal/lump       — partitions, lumping, aggregation operators
//   - internal/kron       — Kronecker (stochastic automata network) backend
//   - internal/fsm        — FSM-with-stochastic-inputs formalism (Figure 2)
//   - internal/spmat      — sparse/dense kernels, GTH direct solve
//   - internal/dist       — jitter and drift distributions
//   - internal/passage    — first-passage, cycle-slip and quasi-stationary analysis
//   - internal/pllsim     — charge-pump PLL clock-jitter substrate
//   - internal/bitsim     — Monte Carlo baseline (serial and parallel)
//   - internal/pdd        — probability decision diagrams (vector compression)
//   - internal/freqloop   — second-order (phase + frequency) loop extension
//   - internal/regime     — Markov-modulated noise regimes (interference bursts)
//   - internal/experiments — calibrated figure configurations and studies
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation section; the runnable examples live under examples/.
package cdrstoch
