// Command cdrsim runs the Monte Carlo baseline — the "straightforward,
// simulation based" approach the paper contrasts against — and optionally
// compares the estimate with the Markov-chain analysis of the same model.
//
// Example:
//
//	cdrsim -preset fig4-high -bits 5000000 -compare
package main

import (
	"flag"
	"fmt"
	"os"

	"cdrstoch/internal/bitsim"
	"cdrstoch/internal/cliutil"
	"cdrstoch/internal/core"
)

func main() {
	fs := flag.NewFlagSet("cdrsim", flag.ExitOnError)
	sf := cliutil.Bind(fs)
	bits := fs.Int64("bits", 1000000, "bit periods to simulate after warmup")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 1, "parallel simulation workers (0 = GOMAXPROCS)")
	compare := fs.Bool("compare", false, "also run the Markov-chain analysis and compare")
	budget := fs.Float64("budget-ber", 0, "print the bits needed to resolve this BER at 10% and exit")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *budget > 0 {
		n, err := bitsim.BitsForTarget(*budget, 0.1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Resolving BER %.1e to ±10%% at 95%% confidence needs ≈ %.2e simulated bits.\n",
			*budget, n)
		return
	}

	spec, err := sf.Spec()
	if err != nil {
		fatal(err)
	}
	res, err := bitsim.RunParallel(bitsim.Config{Spec: spec, Bits: *bits, Seed: *seed}, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Monte Carlo:", res)
	fmt.Printf("MeanTimeBetweenSlips: %.3e bits\n", res.MeanTimeBetweenSlips)

	if *compare {
		m, err := core.Build(spec)
		if err != nil {
			fatal(err)
		}
		a, err := m.Solve(core.SolveOptions{})
		if err != nil {
			fatal(err)
		}
		slip, err := m.SlipStats(a.Pi)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Analysis:    BER=%.3e  MeanTimeBetweenSlips=%.3e bits  (%d states, %d cycles)\n",
			a.BER, slip.MeanTimeBetween, m.NumStates(), a.Multigrid.Cycles)
		switch {
		case a.BER >= res.CILow && a.BER <= res.CIHigh:
			fmt.Println("Agreement:   analysis BER inside the Monte Carlo 95% interval")
		default:
			fmt.Println("Agreement:   analysis BER outside the Monte Carlo 95% interval",
				"(expected when the BER is too small for the simulated bit count)")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdrsim:", err)
	os.Exit(1)
}
