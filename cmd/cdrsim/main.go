// Command cdrsim runs the Monte Carlo baseline — the "straightforward,
// simulation based" approach the paper contrasts against — and optionally
// compares the estimate with the Markov-chain analysis of the same model.
//
// Example:
//
//	cdrsim -preset fig4-high -bits 5000000 -compare
package main

import (
	"flag"
	"fmt"
	"os"

	"cdrstoch/internal/bitsim"
	"cdrstoch/internal/cliutil"
	"cdrstoch/internal/core"
	"cdrstoch/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("cdrsim", flag.ExitOnError)
	sf := cliutil.Bind(fs)
	of := cliutil.BindObs(fs)
	bits := fs.Int64("bits", 1000000, "bit periods to simulate after warmup")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 1,
		"parallel workers for both the Monte Carlo streams and the solver kernels (0 = GOMAXPROCS)")
	compare := fs.Bool("compare", false, "also run the Markov-chain analysis and compare")
	budget := fs.Float64("budget-ber", 0, "print the bits needed to resolve this BER at 10% and exit")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *budget > 0 {
		n, err := bitsim.BitsForTarget(*budget, 0.1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Resolving BER %.1e to ±10%% at 95%% confidence needs ≈ %.2e simulated bits.\n",
			*budget, n)
		return
	}

	obsrv, err := of.Setup()
	if err != nil {
		fatal(err)
	}
	spec, err := sf.Spec()
	if err != nil {
		fatal(err)
	}
	mcDone := obsrv.Registry.Timer("montecarlo").Time()
	endMC := obs.StartSpan(obsrv.Tracer, "cdrsim.montecarlo")
	res, err := bitsim.RunParallel(bitsim.Config{
		Spec: spec, Bits: *bits, Seed: *seed,
		Trace: obsrv.Tracer, Metrics: obsrv.Registry,
	}, *workers)
	endMC()
	mcDone()
	if err != nil {
		fatal(err)
	}
	fmt.Println("Monte Carlo:", res)
	fmt.Printf("MeanTimeBetweenSlips: %.3e bits\n", res.MeanTimeBetweenSlips)

	if *compare {
		m, err := core.Build(spec)
		if err != nil {
			fatal(err)
		}
		opt := core.SolveOptions{}
		opt.Multigrid.Trace = obsrv.Tracer
		opt.Multigrid.Workers = *workers
		solveDone := obsrv.Registry.Timer("solve").Time()
		endSolve := obs.StartSpan(obsrv.Tracer, "cdrsim.solve")
		a, err := m.Solve(opt)
		endSolve()
		solveDone()
		if err != nil {
			fatal(err)
		}
		obsrv.Registry.Counter("multigrid.cycles").Add(int64(a.Multigrid.Cycles))
		slip, err := m.SlipStats(a.Pi)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Analysis:    BER=%.3e  MeanTimeBetweenSlips=%.3e bits  (%d states, %d cycles)\n",
			a.BER, slip.MeanTimeBetween, m.NumStates(), a.Multigrid.Cycles)
		switch {
		case a.BER >= res.CILow && a.BER <= res.CIHigh:
			fmt.Println("Agreement:   analysis BER inside the Monte Carlo 95% interval")
		default:
			fmt.Println("Agreement:   analysis BER outside the Monte Carlo 95% interval",
				"(expected when the BER is too small for the simulated bit count)")
		}
	}
	if err := obsrv.Close(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdrsim:", err)
	os.Exit(1)
}
