package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRunTopRendersCostTable serves a canned /debug/solves page and
// checks the -top renderer: header line, CPU-descending rows, and the
// requested limit on the query.
func TestRunTopRendersCostTable(t *testing.T) {
	var gotLimit string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/solves" {
			http.NotFound(w, r)
			return
		}
		gotLimit = r.URL.Query().Get("limit")
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"count":2,"dropped":3,"reports":[
			{"trace_id":"cheap","endpoint":"analyze","start":"2026-08-09T00:00:00Z","wall_ns":2000000,"cpu_ns":1000000,"pool":{}},
			{"trace_id":"costly","endpoint":"slip","start":"2026-08-09T00:00:00Z","wall_ns":9000000,"cpu_ns":8000000,"cached":true,"pool":{}}
		]}`))
	}))
	defer ts.Close()

	var sb strings.Builder
	if err := runTop(&sb, ts.URL, time.Second, 1, 7); err != nil {
		t.Fatal(err)
	}
	if gotLimit != "7" {
		t.Errorf("limit query = %q, want 7", gotLimit)
	}
	out := sb.String()
	if !strings.Contains(out, "2 solves retained, 3 evicted") {
		t.Errorf("missing ring summary:\n%s", out)
	}
	costlyAt := strings.Index(out, "costly")
	cheapAt := strings.Index(out, "cheap")
	if costlyAt < 0 || cheapAt < 0 || costlyAt > cheapAt {
		t.Errorf("rows not CPU-descending:\n%s", out)
	}
	if !strings.Contains(out, "hit") || !strings.Contains(out, "miss") {
		t.Errorf("cache dispositions missing:\n%s", out)
	}
}

// TestRunTopSurfacesHTTPErrors: a non-200 answer becomes an error, not
// an empty table.
func TestRunTopSurfacesHTTPErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no ring here", http.StatusNotFound)
	}))
	defer ts.Close()
	var sb strings.Builder
	err := runTop(&sb, ts.URL, time.Second, 1, 5)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("err = %v, want 404 surfaced", err)
	}
}
