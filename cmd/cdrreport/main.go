// Command cdrreport regenerates the paper's entire evaluation in one run:
// the Figure 4 panels (low/high eye jitter), the Figure 5 counter-length
// sweep, the solver-comparison table of the Numerical Methods section,
// the cycle-slip statistics, and the Monte Carlo feasibility argument —
// printed as one consolidated report matching EXPERIMENTS.md.
//
//	go run ./cmd/cdrreport            # full report (~1 minute)
//	go run ./cmd/cdrreport -quick     # skip the solver-scaling table
//
// With -top it instead tails a running cdrserved's /debug/solves ring
// and prints a live per-solve cost table sorted by CPU time:
//
//	go run ./cmd/cdrreport -top http://127.0.0.1:8340
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"cdrstoch/internal/bitsim"
	"cdrstoch/internal/cliutil"
	"cdrstoch/internal/core"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
)

func main() {
	quick := flag.Bool("quick", false, "skip the solver-scaling table (the slowest section)")
	top := flag.String("top", "", "tail this cdrserved base URL's /debug/solves as a live cost table instead of running the report")
	topInterval := flag.Duration("top-interval", 2*time.Second, "refresh interval in -top mode")
	topN := flag.Int("top-n", 0, "number of refreshes in -top mode (0 = until interrupted)")
	topLimit := flag.Int("top-limit", 20, "reports per refresh in -top mode")
	of := cliutil.BindObs(flag.CommandLine)
	workers := cliutil.BindWorkers(flag.CommandLine)
	flag.Parse()
	if *top != "" {
		check(runTop(os.Stdout, *top, *topInterval, *topN, *topLimit))
		return
	}
	obsrv, err := of.Setup()
	if err != nil {
		check(err)
	}
	reg := obsrv.Registry
	solveOpt := core.SolveOptions{}
	solveOpt.Multigrid.Workers = *workers
	start := time.Now()

	fmt.Println("Stochastic Modeling and Performance Evaluation for Digital CDR Circuits")
	fmt.Println("Demir & Feldmann, DATE 2000 — reproduction report")
	fmt.Println()

	section("Figure 3 — transition probability matrix structure")
	buildDone := reg.Timer("section.fig3").Time()
	m, err := core.Build(experiments.BaseSpec())
	buildDone()
	check(err)
	n := m.NumStates()
	reg.Gauge("model.states").Set(float64(n))
	reg.Gauge("model.nnz").Set(float64(m.P.NNZ()))
	fmt.Printf("TPM: %d states, %d nonzeros (%.3f%% dense), bandwidth %d, formed in %v\n",
		n, m.P.NNZ(), 100*float64(m.P.NNZ())/float64(n)/float64(n), m.P.Bandwidth(), m.FormTime)
	fmt.Println("(render with: go run ./cmd/tpmspy -preset base)")

	section("Figure 4 — stationary phase-error analysis, low vs 4x eye jitter")
	fig4Done := reg.Timer("section.fig4").Time()
	for _, high := range []bool{false, true} {
		endSpan := obs.StartSpan(obsrv.Tracer, fmt.Sprintf("cdrreport.fig4.high=%v", high))
		p, err := experiments.RunPanel(experiments.Fig4Spec(high), solveOpt)
		endSpan()
		check(err)
		reg.Counter("multigrid.cycles").Add(int64(p.Analysis.Multigrid.Cycles))
		check(p.Annotate(os.Stdout))
		fmt.Printf("  slips: flux %.3e /bit, mean time between %.3e bits\n\n",
			p.Slip.Flux, p.Slip.MeanTimeBetween)
	}
	fig4Done()

	section("Figure 5 — BER vs loop-filter counter length (noise fixed)")
	fig5Done := reg.Timer("section.fig5").Time()
	points, best, err := experiments.OptimalCounter(experiments.Fig5Spec, []int{1, 2, 4, 8, 16, 32}, solveOpt)
	fig5Done()
	check(err)
	fmt.Printf("%-8s %12s %12s\n", "counter", "BER", "vs best")
	for _, p := range points {
		fmt.Printf("%-8d %12.3e %11.1fx\n", p.CounterLen, p.BER, p.BER/points[best].BER)
	}
	fmt.Printf("optimal counter length: %d\n", points[best].CounterLen)

	if !*quick {
		section("Numerical Methods — solver comparison under grid refinement")
		solverDone := reg.Timer("section.solvers").Time()
		for _, refine := range []int{2, 4} {
			spec, err := experiments.ScaledSpec(refine)
			check(err)
			mm, err := core.Build(spec)
			check(err)
			fmt.Printf("grid 1/%d UI (%d states):\n", int(1/spec.GridStep+0.5), mm.NumStates())
			rows, err := experiments.CompareSolvers(mm, 1e-10, 200000, obsrv.Tracer)
			check(err)
			for _, row := range rows {
				reg.Counter("solver.iterations").Add(int64(row.Iterations))
			}
			check(experiments.WriteSolverTable(os.Stdout, rows))
			fmt.Println()
		}
		solverDone()
	}

	section("Introduction — simulation infeasibility at SONET-class BER")
	mcDone := reg.Timer("section.montecarlo").Time()
	p, err := experiments.RunPanel(experiments.Fig4Spec(false), solveOpt)
	check(err)
	target := p.Analysis.BER
	if target < 1e-14 {
		target = 1e-14
	}
	bits, err := bitsim.BitsForTarget(target, 0.1)
	check(err)
	fmt.Printf("low-noise BER %.2e solved by analysis in %v;\n", p.Analysis.BER, p.Analysis.SolveTime)
	fmt.Printf("resolving it by simulation to ±10%% needs ≈ %.1e bits.\n", bits)
	mc, err := bitsim.RunParallel(bitsim.Config{
		Spec: experiments.Fig4Spec(true), Bits: 1000000, Seed: 1,
		Trace: obsrv.Tracer, Metrics: reg,
	}, 0)
	check(err)
	hp, err := experiments.RunPanel(experiments.Fig4Spec(true), solveOpt)
	check(err)
	agree := "inside"
	if hp.Analysis.BER < mc.CILow || hp.Analysis.BER > mc.CIHigh {
		agree = "outside"
	}
	fmt.Printf("high-noise cross-check: analysis %.3e %s the Monte Carlo 95%% interval [%.3e, %.3e]\n",
		hp.Analysis.BER, agree, mc.CILow, mc.CIHigh)
	mcDone()

	section("Metrics — section timings and work counters")
	check(reg.Snapshot().WriteText(os.Stdout))

	fmt.Printf("\nReport completed in %v.\n", time.Since(start).Round(time.Millisecond))
	check(obsrv.Close(os.Stdout))
}

// solvesPage mirrors the /debug/solves JSON body.
type solvesPage struct {
	Count   int                `json:"count"`
	Dropped uint64             `json:"dropped"`
	Reports []cost.SolveReport `json:"reports"`
}

// topOnce fetches one page of the solve-cost ring and renders the table.
func topOnce(w io.Writer, client *http.Client, base string, limit int) error {
	url := strings.TrimRight(base, "/") + "/debug/solves?limit=" + strconv.Itoa(limit)
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var page solvesPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	if _, err := fmt.Fprintf(w, "%s  %d solves retained, %d evicted\n",
		time.Now().Format(time.TimeOnly), page.Count, page.Dropped); err != nil {
		return err
	}
	return cost.WriteTable(w, page.Reports)
}

// runTop polls the daemon's /debug/solves every interval and prints the
// live cost table, iters times (0 = until interrupted).
func runTop(w io.Writer, base string, interval time.Duration, iters, limit int) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if limit <= 0 {
		limit = 20
	}
	client := &http.Client{Timeout: interval + 5*time.Second}
	for i := 0; ; i++ {
		if err := topOnce(w, client, base, limit); err != nil {
			return err
		}
		if iters > 0 && i+1 >= iters {
			return nil
		}
		fmt.Fprintln(w)
		time.Sleep(interval)
	}
}

func section(title string) {
	fmt.Println("────────────────────────────────────────────────────────────────────")
	fmt.Println(title)
	fmt.Println("────────────────────────────────────────────────────────────────────")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdrreport:", err)
		os.Exit(1)
	}
}
