// Command tpmspy renders the nonzero pattern of the CDR transition
// probability matrix — the paper's Figure 3 — as ASCII art on stdout, or
// as a PGM image / MatrixMarket file when an output path is given.
//
// Examples:
//
//	tpmspy -preset base -w 96 -h 48
//	tpmspy -preset base -pgm fig3.pgm
//	tpmspy -counter 2 -grid 16 -mm tpm.mtx
package main

import (
	"fmt"
	"os"

	"cdrstoch/internal/cliutil"
	"cdrstoch/internal/core"
	"cdrstoch/internal/obs"
)

func main() {
	app := cliutil.NewApp("tpmspy")
	fs := app.Flags
	sf := app.Spec
	w := fs.Int("w", 96, "ASCII pattern width in characters")
	h := fs.Int("h", 48, "ASCII pattern height in characters")
	pgm := fs.String("pgm", "", "write a 512x512 PGM image of the pattern to this path")
	mm := fs.String("mm", "", "write the full matrix in MatrixMarket format to this path")
	app.Parse(os.Args[1:])
	obsrv := app.Setup()
	spec, err := sf.Spec()
	if err != nil {
		app.Fatal(err)
	}
	buildDone := obsrv.Registry.Timer("build").Time()
	endBuild := obs.StartSpan(obsrv.Tracer, "tpmspy.build")
	m, err := core.Build(spec)
	endBuild()
	buildDone()
	if err != nil {
		app.Fatal(err)
	}
	n := m.NumStates()
	obsrv.Registry.Gauge("model.states").Set(float64(n))
	obsrv.Registry.Gauge("model.nnz").Set(float64(m.P.NNZ()))
	fmt.Printf("TPM: %d x %d, %d nonzeros (%.4f%% dense), bandwidth %d\n",
		n, n, m.P.NNZ(), 100*float64(m.P.NNZ())/float64(n)/float64(n), m.P.Bandwidth())

	if *pgm != "" {
		f, err := os.Create(*pgm)
		if err != nil {
			app.Fatal(err)
		}
		if err := m.P.WritePGM(f, 512, 512); err != nil {
			app.Fatal(err)
		}
		if err := f.Close(); err != nil {
			app.Fatal(err)
		}
		fmt.Println("wrote", *pgm)
	}
	if *mm != "" {
		f, err := os.Create(*mm)
		if err != nil {
			app.Fatal(err)
		}
		if err := m.P.WriteMatrixMarket(f); err != nil {
			app.Fatal(err)
		}
		if err := f.Close(); err != nil {
			app.Fatal(err)
		}
		fmt.Println("wrote", *mm)
	}
	if *pgm == "" && *mm == "" {
		fmt.Print(m.P.Pattern(*w, *h))
	}
	if err := obsrv.Close(os.Stdout); err != nil {
		app.Fatal(err)
	}
}
