// Command cdrsweep runs parameter sweeps over the CDR model:
//
//	-sweep counter   BER vs loop-filter counter length (Figure 5)
//	-sweep noise     BER vs eye-jitter standard deviation (Figure 4 axis)
//	-sweep solver    solver comparison table vs grid refinement (§Numerical Methods)
//
// Each sweep prints one aligned table to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cdrstoch/internal/cliutil"
	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("cdrsweep", flag.ExitOnError)
	sf := cliutil.Bind(fs)
	of := cliutil.BindObs(fs)
	sweep := fs.String("sweep", "counter", "sweep kind: counter, noise, solver, grid")
	values := fs.String("values", "", "comma-separated sweep values (defaults per sweep kind)")
	tol := fs.Float64("tol", 1e-10, "solver tolerance (solver sweep)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	obsrv, err := of.Setup()
	if err != nil {
		fatal(err)
	}

	switch *sweep {
	case "counter":
		lengths := []int{1, 2, 4, 8, 16, 32}
		if *values != "" {
			var err error
			lengths, err = parseInts(*values)
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%-8s %12s %14s %10s %8s\n", "counter", "BER", "MTBS(bits)", "states", "cycles")
		for _, l := range lengths {
			spec, err := specWithCounter(sf, l)
			if err != nil {
				fatal(err)
			}
			endSpan := obs.StartSpan(obsrv.Tracer, fmt.Sprintf("sweep.counter.%d", l))
			pointDone := obsrv.Registry.Timer("sweep.point").Time()
			p, err := experiments.RunPanel(spec)
			pointDone()
			endSpan()
			if err != nil {
				fatal(fmt.Errorf("counter %d: %w", l, err))
			}
			obsrv.Registry.Counter("multigrid.cycles").Add(int64(p.Analysis.Multigrid.Cycles))
			warnUnconverged(p.Analysis.Multigrid.Converged, fmt.Sprintf("counter %d", l), p.Analysis.Multigrid.Residual)
			fmt.Printf("%-8d %12.3e %14.3e %10d %8d\n",
				l, p.Analysis.BER, p.Slip.MeanTimeBetween,
				p.Model.NumStates(), p.Analysis.Multigrid.Cycles)
		}
	case "noise":
		sigmas := []float64{0.02, 0.04, 0.06, 0.08, 0.10}
		if *values != "" {
			var err error
			sigmas, err = parseFloats(*values)
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%-8s %12s %14s %8s\n", "stdnw", "BER", "MTBS(bits)", "cycles")
		for _, sig := range sigmas {
			spec, err := sf.Spec()
			if err != nil {
				fatal(err)
			}
			spec.EyeJitter = dist.NewGaussian(0, sig)
			endSpan := obs.StartSpan(obsrv.Tracer, fmt.Sprintf("sweep.noise.%g", sig))
			pointDone := obsrv.Registry.Timer("sweep.point").Time()
			p, err := experiments.RunPanel(spec)
			pointDone()
			endSpan()
			if err != nil {
				fatal(fmt.Errorf("stdnw %g: %w", sig, err))
			}
			obsrv.Registry.Counter("multigrid.cycles").Add(int64(p.Analysis.Multigrid.Cycles))
			warnUnconverged(p.Analysis.Multigrid.Converged, fmt.Sprintf("stdnw %g", sig), p.Analysis.Multigrid.Residual)
			fmt.Printf("%-8.3f %12.3e %14.3e %8d\n",
				sig, p.Analysis.BER, p.Slip.MeanTimeBetween, p.Analysis.Multigrid.Cycles)
		}
	case "solver":
		refines := []int{1, 2, 4}
		if *values != "" {
			var err error
			refines, err = parseInts(*values)
			if err != nil {
				fatal(err)
			}
		}
		for _, r := range refines {
			spec, err := experiments.ScaledSpec(r)
			if err != nil {
				fatal(err)
			}
			m, err := core.Build(spec)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("== grid 1/%d UI: %d states, %d nnz ==\n",
				int(1/spec.GridStep+0.5), m.NumStates(), m.P.NNZ())
			sweepDone := obsrv.Registry.Timer("sweep.solver").Time()
			rows, err := experiments.CompareSolvers(m, *tol, 200000, obsrv.Tracer)
			sweepDone()
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteSolverTable(os.Stdout, rows); err != nil {
				fatal(err)
			}
			for _, row := range rows {
				obsrv.Registry.Counter("solver.iterations").Add(int64(row.Iterations))
				if !row.Converged {
					fmt.Fprintf(os.Stderr,
						"cdrsweep: warning: %s did not converge at grid 1/%d (final residual %.3e, decay %.4f/iter); tabulated value is the unconverged iterate\n",
						row.Name, int(1/spec.GridStep+0.5), row.Residual, row.Slope)
				}
			}
		}
	case "grid":
		denoms := []int{16, 32, 64, 128}
		if *values != "" {
			var err error
			denoms, err = parseInts(*values)
			if err != nil {
				fatal(err)
			}
		}
		points, err := experiments.GridStudy(denoms, 0.0005, 0.012, 0.08, 8)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s %10s %12s %8s %14s\n", "grid", "states", "BER", "cycles", "|dBER|")
		prev := 0.0
		for i, p := range points {
			diff := "-"
			if i > 0 {
				diff = fmt.Sprintf("%.3e", abs(p.BER-prev))
			}
			fmt.Printf("1/%-6d %10d %12.3e %8d %14s\n", p.GridDenom, p.States, p.BER, p.Cycles, diff)
			prev = p.BER
		}
	default:
		fatal(fmt.Errorf("unknown sweep %q", *sweep))
	}
	if err := obsrv.Close(os.Stdout); err != nil {
		fatal(err)
	}
}

// warnUnconverged reports an unconverged iterative solve on stderr rather
// than letting the unconverged value enter the table silently.
func warnUnconverged(converged bool, point string, residual float64) {
	if !converged {
		fmt.Fprintf(os.Stderr,
			"cdrsweep: warning: solver did not converge at %s (final residual %.3e); tabulated value is the unconverged iterate\n",
			point, residual)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// specWithCounter builds the flag spec with an overridden counter length,
// honoring the fig5 preset.
func specWithCounter(sf *cliutil.SpecFlags, l int) (core.Spec, error) {
	if *sf.Preset == "fig5" || *sf.Preset == "" {
		return experiments.Fig5Spec(l), nil
	}
	spec, err := sf.Spec()
	if err != nil {
		return core.Spec{}, err
	}
	spec.CounterLen = l
	return spec, spec.Validate()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdrsweep:", err)
	os.Exit(1)
}
