// Command cdrsweep runs parameter sweeps over the CDR model:
//
//	-sweep counter   BER vs loop-filter counter length (Figure 5)
//	-sweep noise     BER vs eye-jitter standard deviation (Figure 4 axis)
//	-sweep solver    solver comparison table vs grid refinement (§Numerical Methods)
//
// Each sweep prints one aligned table to stdout. With -strict, any
// unconverged solve turns the warning into a nonzero exit, so scripted
// sweeps cannot silently tabulate unconverged iterates. With -batch, the
// counter and noise sweeps run as one warm-started continuation chain
// (shared symbolic setup, neighbor-seeded solves) instead of independent
// point-at-a-time solves; the per-point cycle and SpMV columns — sourced
// from each solve's cost meter — make the savings visible in the table.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"cdrstoch/internal/cliutil"
	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
	sweepeng "cdrstoch/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// exitUnconverged is the -strict exit status, distinct from usage (2) and
// operational (1) failures.
const exitUnconverged = 3

// strictExitCode folds the unconverged-solve count into the process exit
// status under the -strict contract.
func strictExitCode(strict bool, unconverged int) int {
	if strict && unconverged > 0 {
		return exitUnconverged
	}
	return 0
}

func run(args []string, stdout, stderr io.Writer) int {
	app := cliutil.NewApp("cdrsweep")
	fs := app.Flags
	sf := app.Spec
	sweep := fs.String("sweep", "counter", "sweep kind: counter, noise, solver, grid")
	values := fs.String("values", "", "comma-separated sweep values (defaults per sweep kind)")
	tol := fs.Float64("tol", 1e-10, "solver tolerance (solver sweep)")
	strict := fs.Bool("strict", false, "exit nonzero (status 3) when any solve fails to converge")
	batch := fs.Bool("batch", false, "run counter/noise sweeps as one warm-started continuation chain")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "cdrsweep:", err)
		return 1
	}
	obsrv, err := app.Obs.Setup()
	if err != nil {
		return fail(err)
	}
	solveOpt := core.SolveOptions{}
	solveOpt.Multigrid.Workers = *app.Workers

	unconverged := 0
	runner := newPointRunner(*batch, solveOpt)
	switch *sweep {
	case "counter":
		lengths := []int{1, 2, 4, 8, 16, 32}
		if *values != "" {
			var err error
			lengths, err = cliutil.ParseInts(*values)
			if err != nil {
				return fail(err)
			}
		}
		fmt.Fprintf(stdout, "%-8s %12s %14s %10s %8s %10s %6s\n",
			"counter", "BER", "MTBS(bits)", "states", "cycles", "spmvs", "warm")
		for _, l := range lengths {
			spec, err := specWithCounter(sf, l)
			if err != nil {
				return fail(err)
			}
			endSpan := obs.StartSpan(obsrv.Tracer, fmt.Sprintf("sweep.counter.%d", l))
			pointDone := obsrv.Registry.Timer("sweep.point").Time()
			p, rep, err := runner.solve(spec)
			pointDone()
			endSpan()
			if errors.Is(err, core.ErrUnconverged) {
				// The batch session refuses to tabulate unconverged points;
				// degrade like the point-at-a-time path: warn and move on.
				warnUnconverged(stderr, false, fmt.Sprintf("counter %d", l), 0)
				unconverged++
				continue
			}
			if err != nil {
				return fail(fmt.Errorf("counter %d: %w", l, err))
			}
			obsrv.Registry.Counter("multigrid.cycles").Add(rep.Cycles)
			if warnUnconverged(stderr, p.Analysis.Multigrid.Converged, fmt.Sprintf("counter %d", l), p.Analysis.Multigrid.Residual) {
				unconverged++
			}
			fmt.Fprintf(stdout, "%-8d %12.3e %14.3e %10d %8d %10d %6s\n",
				l, p.Analysis.BER, p.Slip.MeanTimeBetween,
				p.Model.NumStates(), rep.Cycles, rep.Pool.SpMVs, warmMark(rep.WarmStarted))
		}
		runner.summarize(stdout)
	case "noise":
		sigmas := []float64{0.02, 0.04, 0.06, 0.08, 0.10}
		if *values != "" {
			var err error
			sigmas, err = cliutil.ParseFloats(*values)
			if err != nil {
				return fail(err)
			}
		}
		fmt.Fprintf(stdout, "%-8s %12s %14s %8s %10s %6s\n",
			"stdnw", "BER", "MTBS(bits)", "cycles", "spmvs", "warm")
		for _, sig := range sigmas {
			spec, err := sf.Spec()
			if err != nil {
				return fail(err)
			}
			spec.EyeJitter = dist.NewGaussian(0, sig)
			endSpan := obs.StartSpan(obsrv.Tracer, fmt.Sprintf("sweep.noise.%g", sig))
			pointDone := obsrv.Registry.Timer("sweep.point").Time()
			p, rep, err := runner.solve(spec)
			pointDone()
			endSpan()
			if errors.Is(err, core.ErrUnconverged) {
				warnUnconverged(stderr, false, fmt.Sprintf("stdnw %g", sig), 0)
				unconverged++
				continue
			}
			if err != nil {
				return fail(fmt.Errorf("stdnw %g: %w", sig, err))
			}
			obsrv.Registry.Counter("multigrid.cycles").Add(rep.Cycles)
			if warnUnconverged(stderr, p.Analysis.Multigrid.Converged, fmt.Sprintf("stdnw %g", sig), p.Analysis.Multigrid.Residual) {
				unconverged++
			}
			fmt.Fprintf(stdout, "%-8.3f %12.3e %14.3e %8d %10d %6s\n",
				sig, p.Analysis.BER, p.Slip.MeanTimeBetween, rep.Cycles, rep.Pool.SpMVs, warmMark(rep.WarmStarted))
		}
		runner.summarize(stdout)
	case "solver":
		refines := []int{1, 2, 4}
		if *values != "" {
			var err error
			refines, err = cliutil.ParseInts(*values)
			if err != nil {
				return fail(err)
			}
		}
		for _, r := range refines {
			spec, err := experiments.ScaledSpec(r)
			if err != nil {
				return fail(err)
			}
			m, err := core.Build(spec)
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "== grid 1/%d UI: %d states, %d nnz ==\n",
				int(1/spec.GridStep+0.5), m.NumStates(), m.P.NNZ())
			sweepDone := obsrv.Registry.Timer("sweep.solver").Time()
			rows, err := experiments.CompareSolvers(m, *tol, 200000, obsrv.Tracer)
			sweepDone()
			if err != nil {
				return fail(err)
			}
			if err := experiments.WriteSolverTable(stdout, rows); err != nil {
				return fail(err)
			}
			for _, row := range rows {
				obsrv.Registry.Counter("solver.iterations").Add(int64(row.Iterations))
				if !row.Converged {
					unconverged++
					fmt.Fprintf(stderr,
						"cdrsweep: warning: %s did not converge at grid 1/%d (final residual %.3e, decay %.4f/iter); tabulated value is the unconverged iterate\n",
						row.Name, int(1/spec.GridStep+0.5), row.Residual, row.Slope)
				}
			}
		}
	case "grid":
		denoms := []int{16, 32, 64, 128}
		if *values != "" {
			var err error
			denoms, err = cliutil.ParseInts(*values)
			if err != nil {
				return fail(err)
			}
		}
		points, err := experiments.GridStudy(denoms, 0.0005, 0.012, 0.08, 8)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%-8s %10s %12s %8s %14s\n", "grid", "states", "BER", "cycles", "|dBER|")
		prev := 0.0
		for i, p := range points {
			diff := "-"
			if i > 0 {
				diff = fmt.Sprintf("%.3e", abs(p.BER-prev))
			}
			fmt.Fprintf(stdout, "1/%-6d %10d %12.3e %8d %14s\n", p.GridDenom, p.States, p.BER, p.Cycles, diff)
			prev = p.BER
		}
	default:
		return fail(fmt.Errorf("unknown sweep %q", *sweep))
	}
	if err := obsrv.Close(stdout); err != nil {
		return fail(err)
	}
	if code := strictExitCode(*strict, unconverged); code != 0 {
		fmt.Fprintf(stderr, "cdrsweep: %d solve(s) did not converge (-strict)\n", unconverged)
		return code
	}
	return 0
}

// pointRunner solves sweep points either point-at-a-time (fresh build and
// cold W-cycles per point, the historical path) or through one
// warm-started sweep.Session (-batch). Every point runs under its own
// cost.Meter, so the table's cycles/spmvs/warm columns come from the same
// accounting the server reports in X-Solve-Cost-* headers.
type pointRunner struct {
	batch bool
	sess  *sweepeng.Session
	opt   core.SolveOptions
}

func newPointRunner(batch bool, opt core.SolveOptions) *pointRunner {
	r := &pointRunner{batch: batch, opt: opt}
	if batch {
		r.sess = sweepeng.New(sweepeng.Options{Solve: opt})
	}
	return r
}

// solve runs one point and returns the panel together with the point's
// cost report (cycle count, kernel counts, warm-start flag).
func (r *pointRunner) solve(spec core.Spec) (*experiments.Panel, cost.SolveReport, error) {
	meter := cost.NewMeter()
	ctx := cost.ContextWith(context.Background(), meter)
	if r.batch {
		pt, err := r.sess.Solve(ctx, spec)
		if err != nil {
			return nil, meter.Finish(), err
		}
		slip, err := pt.Model.SlipStats(pt.Analysis.Pi)
		if err != nil {
			return nil, meter.Finish(), err
		}
		return &experiments.Panel{Model: pt.Model, Analysis: pt.Analysis, Slip: slip}, meter.Finish(), nil
	}
	opt := r.opt
	opt.Multigrid.Ctx = ctx
	p, err := experiments.RunPanel(spec, opt)
	return p, meter.Finish(), err
}

// summarize prints the session's continuation counters after a batch
// sweep; point-at-a-time runs have no chain to summarize.
func (r *pointRunner) summarize(w io.Writer) {
	if !r.batch {
		return
	}
	st := r.sess.Stats()
	fmt.Fprintf(w, "batch: %d points, %d setup reuses, %d warm starts, %d fallbacks, %d total cycles\n",
		st.Points, st.ReusedSetup, st.WarmStarted, st.Fallbacks, st.Cycles)
}

// warmMark renders the warm-start table cell.
func warmMark(warm bool) string {
	if warm {
		return "yes"
	}
	return "-"
}

// warnUnconverged reports an unconverged iterative solve on stderr rather
// than letting the unconverged value enter the table silently, and
// reports whether it warned (for the -strict accounting).
func warnUnconverged(w io.Writer, converged bool, point string, residual float64) bool {
	if converged {
		return false
	}
	fmt.Fprintf(w,
		"cdrsweep: warning: solver did not converge at %s (final residual %.3e); tabulated value is the unconverged iterate\n",
		point, residual)
	return true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// specWithCounter builds the flag spec with an overridden counter length,
// honoring the fig5 preset.
func specWithCounter(sf *cliutil.SpecFlags, l int) (core.Spec, error) {
	if *sf.Preset == "fig5" || *sf.Preset == "" {
		return experiments.Fig5Spec(l), nil
	}
	spec, err := sf.Spec()
	if err != nil {
		return core.Spec{}, err
	}
	spec.CounterLen = l
	return spec, spec.Validate()
}
