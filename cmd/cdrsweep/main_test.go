package main

import (
	"bytes"
	"strings"
	"testing"
)

// smallSpecArgs shrinks the model to ~153 states so sweeps run in
// milliseconds.
var smallSpecArgs = []string{
	"-grid", "16", "-corr", "8", "-phasemax", "0.5", "-counter", "2",
	"-maxrun", "3", "-stdnw", "0.05",
	"-drift-max", "0.125", "-drift-mean", "0.01", "-drift-shape", "0.5",
}

func TestRunNoiseSweepConvergedExitsZero(t *testing.T) {
	for _, strict := range []bool{false, true} {
		args := append([]string{"-sweep", "noise", "-values", "0.05"}, smallSpecArgs...)
		if strict {
			args = append(args, "-strict")
		}
		var stdout, stderr bytes.Buffer
		code := run(args, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("strict=%v: exit %d, stderr:\n%s", strict, code, stderr.String())
		}
		if !strings.Contains(stdout.String(), "stdnw") {
			t.Errorf("strict=%v: missing table header in output:\n%s", strict, stdout.String())
		}
		if strings.Contains(stderr.String(), "did not converge") {
			t.Errorf("strict=%v: unexpected convergence warning:\n%s", strict, stderr.String())
		}
	}
}

// TestRunNoiseSweepBatch drives the warm-started continuation chain
// through the CLI: later points of a smooth noise family must show the
// warm column, and the session summary line must account for them.
func TestRunNoiseSweepBatch(t *testing.T) {
	args := append([]string{"-sweep", "noise", "-batch", "-values", "0.05,0.052,0.054"}, smallSpecArgs...)
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "warm") {
		t.Errorf("missing warm column:\n%s", out)
	}
	if !strings.Contains(out, "yes") {
		t.Errorf("no warm-started point in a smooth family:\n%s", out)
	}
	if !strings.Contains(out, "2 warm starts") || !strings.Contains(out, "2 setup reuses") {
		t.Errorf("missing batch summary:\n%s", out)
	}
	if strings.Contains(stderr.String(), "did not converge") {
		t.Errorf("unexpected convergence warning:\n%s", stderr.String())
	}
}

// TestRunCounterSweepBatch checks batch counter sweeps survive pattern
// changes between points (every counter length rebuilds the hierarchy).
func TestRunCounterSweepBatch(t *testing.T) {
	args := append([]string{"-sweep", "counter", "-batch", "-values", "2,3"}, smallSpecArgs...)
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "counter") || !strings.Contains(stdout.String(), "batch:") {
		t.Errorf("output:\n%s", stdout.String())
	}
}

func TestRunRejectsUnknownSweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sweep", "bogus"}, &stdout, &stderr); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown sweep") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

// TestStrictExitCode covers both sides of the -strict contract: an
// unconverged solve is fatal only when strict is requested.
func TestStrictExitCode(t *testing.T) {
	cases := []struct {
		strict      bool
		unconverged int
		want        int
	}{
		{false, 0, 0},
		{false, 3, 0},
		{true, 0, 0},
		{true, 1, exitUnconverged},
	}
	for _, c := range cases {
		if got := strictExitCode(c.strict, c.unconverged); got != c.want {
			t.Errorf("strictExitCode(%v, %d) = %d, want %d", c.strict, c.unconverged, got, c.want)
		}
	}
}

func TestWarnUnconverged(t *testing.T) {
	var buf bytes.Buffer
	if warnUnconverged(&buf, true, "counter 4", 1e-13) {
		t.Error("converged solve reported as warned")
	}
	if buf.Len() != 0 {
		t.Errorf("converged solve wrote: %s", buf.String())
	}
	if !warnUnconverged(&buf, false, "counter 4", 1e-3) {
		t.Error("unconverged solve not reported")
	}
	if !strings.Contains(buf.String(), "did not converge at counter 4") {
		t.Errorf("warning text: %s", buf.String())
	}
}
