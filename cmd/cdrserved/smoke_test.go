package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/obs"
)

// TestServerSmoke drives the real binary end to end: build, launch on a
// random port, solve the same spec twice (asserting the second response
// is byte-identical, served ≥10× faster, traced no solver iterations and
// incremented the cache-hit counter), then SIGTERM and assert a clean
// exit.
func TestServerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "cdrserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	tracePath := filepath.Join(dir, "trace.jsonl")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-trace", tracePath)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	outBuf := &bytes.Buffer{}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(outBuf, line)
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never announced its address")
	}

	specJSON, err := json.Marshal(core.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	reqBody := []byte(fmt.Sprintf(`{"spec": %s}`, specJSON))

	post := func() ([]byte, time.Duration, string) {
		t.Helper()
		start := time.Now()
		resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		return body, elapsed, resp.Header.Get("X-Cache")
	}

	iterEvents := func() int {
		t.Helper()
		f, err := os.Open(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		events, err := obs.ReadEvents(f)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range events {
			if e.Kind == "iter" {
				n++
			}
		}
		return n
	}

	first, coldLatency, cache1 := post()
	if cache1 != "miss" {
		t.Errorf("first POST X-Cache = %q, want miss", cache1)
	}
	itersAfterFirst := iterEvents()
	if itersAfterFirst == 0 {
		t.Error("cold solve traced no solver iterations")
	}

	second, warmLatency, cache2 := post()
	if cache2 != "hit" {
		t.Errorf("second POST X-Cache = %q, want hit", cache2)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached response not byte-identical:\n%s\nvs\n%s", first, second)
	}
	if got := iterEvents(); got != itersAfterFirst {
		t.Errorf("cache hit traced %d new solver iterations, want 0", got-itersAfterFirst)
	}
	if warmLatency*10 > coldLatency {
		t.Errorf("cache hit latency %v not ≥10× below cold solve %v", warmLatency, coldLatency)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(metricsBody, &snap); err != nil {
		t.Fatalf("metrics not a snapshot: %v\n%s", err, metricsBody)
	}
	if snap.Counters["serve.cache_hits"] != 1 {
		t.Errorf("cache_hits = %d, want 1", snap.Counters["serve.cache_hits"])
	}
	if snap.Counters["serve.solves"] != 1 {
		t.Errorf("solves = %d, want 1", snap.Counters["serve.solves"])
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Let the reader hit EOF before Wait closes the pipe, so no output
	// line is lost (and outBuf is no longer written concurrently).
	select {
	case <-readerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon stdout never closed after SIGTERM")
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Errorf("daemon exited uncleanly: %v\nstdout:\n%s", err, outBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(outBuf.String(), "draining") {
		t.Errorf("missing drain notice in stdout:\n%s", outBuf.String())
	}
}
