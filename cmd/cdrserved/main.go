// Command cdrserved is the long-running CDR analysis service: an HTTP
// JSON daemon answering stationary/BER analyses, cycle-slip statistics
// and parameter sweeps over the model of the paper, with a
// content-addressed result cache (identical specs solve once and replay
// byte-identically), singleflight deduplication of concurrent identical
// requests, and context-cancellable solvers.
//
// Endpoints:
//
//	POST /v1/analyze   {"spec": {...}, "async": false}
//	POST /v1/slip      {"spec": {...}}
//	POST /v1/sweep     {"spec": {...}, "param": "counter", "values": [1,2,4]}
//	GET  /v1/jobs/{id}        poll an async job
//	GET  /v1/jobs/{id}/trace  solver trace events for an async job
//	GET  /v1/jobs/{id}/events live solve progress as Server-Sent Events
//	                          (start/iter/progress/watchdog/done)
//	GET  /healthz             liveness + build info + cache/queue occupancy
//	GET  /metrics             registry snapshot (JSON, or Prometheus text
//	                          exposition under Accept: text/plain)
//	GET  /debug/flight        flight recorder dump (recent solver events)
//	GET  /debug/solves        per-solve cost reports (SolveReport ring);
//	                          ?trace= ?spec= ?endpoint= ?min_ms= ?limit=,
//	                          human table under Accept: text/plain
//	GET  /debug/progress      in-flight solves (phase, residual, ETA,
//	                          watchdog state), human table under
//	                          Accept: text/plain
//
// On SIGINT/SIGTERM the daemon stops accepting, drains queued jobs within
// the -drain budget, then exits 0.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdrstoch/internal/buildinfo"
	"cdrstoch/internal/cliutil"
	"cdrstoch/internal/faults"
	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/serve"
)

func main() {
	app := cliutil.NewObsApp("cdrserved")
	fs := app.Flags
	addr := fs.String("addr", "127.0.0.1:8340", "listen address (port 0 picks a free port)")
	jobWorkers := fs.Int("job-workers", 2, "async job worker count")
	queue := fs.Int("queue", 8, "async job queue depth; a full queue answers 429")
	cacheN := fs.Int("cache", 256, "result cache capacity in entries")
	conc := fs.Int("concurrent", 4, "maximum simultaneous solves")
	timeout := fs.Duration("timeout", 120*time.Second, "synchronous request deadline")
	drainBudget := fs.Duration("drain", 30*time.Second, "graceful shutdown budget before canceling running jobs")
	flightN := fs.Int("flight", 0, "flight recorder ring size in events (0 = default)")
	solvesN := fs.Int("solves", 0, "cost report ring size behind /debug/solves (0 = default)")
	costLog := fs.String("cost-log", "", "append per-solve cost reports as JSON lines to this file")
	runtimePoll := fs.Duration("runtime-poll", 10*time.Second, "runtime/metrics polling interval for runtime.* gauges (0 disables)")
	stallWindow := fs.Duration("stall-window", 0, "watchdog staleness window: no events or residual improvement for this long marks a solve stalled (0 = default 10s)")
	wdInterval := fs.Duration("watchdog-interval", 0, "watchdog check cadence (0 = default 1s)")
	divergeChecks := fs.Int("diverge-checks", 0, "consecutive residual-growth checks before a solve is classified diverging (0 = default 3)")
	cancelOnStall := fs.Bool("cancel-on-stall", false, "let the watchdog cancel stalled/diverging solves so job retry kicks in sooner")
	wdRing := fs.Int("watchdog-ring", 0, "watchdog event ring size behind /debug/progress (0 = default)")
	version := fs.Bool("version", false, "print build attribution and exit")
	app.Parse(os.Args[1:])
	if *version {
		fmt.Printf("cdrserved %s\n", buildinfo.Get())
		return
	}
	obsrv := app.Setup()

	// Chaos runs arm injection points via CDR_FAULTS (seeded by
	// CDR_FAULTS_SEED); unset leaves injection disabled at zero cost.
	inj, err := faults.FromEnv(obsrv.Registry)
	if err != nil {
		app.Fatal(err)
	}
	if inj != nil {
		fmt.Printf("cdrserved: %s\n", inj)
	}

	// Optional JSONL sink for per-solve cost reports; its sticky drop
	// count surfaces as the cost.log_dropped gauge.
	var costSink *cost.JSONL
	if *costLog != "" {
		f, err := os.OpenFile(*costLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			app.Fatal(err)
		}
		defer f.Close()
		costSink = cost.NewJSONL(f)
	}

	// GC/scheduler health gauges (runtime.*) poll on their own cadence;
	// stopped during drain so the exit is clean.
	stopRuntime := cost.NewRuntimeCollector(obsrv.Registry).Start(*runtimePoll)
	defer stopRuntime()

	srv := serve.NewServer(serve.ServerConfig{
		Engine: serve.EngineConfig{
			CacheEntries:  *cacheN,
			MaxConcurrent: *conc,
			SolveWorkers:  *app.Workers,
		},
		Workers:      *jobWorkers,
		QueueDepth:   *queue,
		SyncTimeout:  *timeout,
		Registry:     obsrv.Registry,
		Tracer:       obsrv.Tracer,
		FlightSize:   *flightN,
		CostRingSize: *solvesN,
		CostLog:      costSink,
		Faults:       inj,
		ErrorLog:     log.New(os.Stderr, "cdrserved: ", log.LstdFlags|log.LUTC),

		StallWindow:      *stallWindow,
		WatchdogInterval: *wdInterval,
		DivergeChecks:    *divergeChecks,
		CancelOnStall:    *cancelOnStall,
		WatchdogRingSize: *wdRing,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		app.Fatal(err)
	}
	// The smoke tests parse this line to discover a :0-assigned port;
	// keep its shape stable.
	fmt.Printf("cdrserved: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("cdrserved: %v: draining\n", s)
	case err := <-serveErr:
		app.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainBudget)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "cdrserved: shutdown:", err)
	}
	drained := make(chan struct{})
	go func() {
		srv.Close() // lets queued jobs finish
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "cdrserved: drain budget exhausted, canceling running jobs")
		srv.CancelJobs()
		<-drained
	}
	if err := obsrv.Close(os.Stdout); err != nil {
		app.Fatal(err)
	}
	fmt.Println("cdrserved: drained, exiting")
}
