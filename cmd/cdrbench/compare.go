package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// compareMetrics are the columns of the delta table, in report order.
var compareMetrics = []string{"ns/op", "B/op", "allocs/op"}

// deltaRow is one benchmark/metric pair present in both snapshots.
type deltaRow struct {
	Name   string
	Metric string
	Old    float64
	New    float64
	// Ratio is New/Old (1.0 = unchanged; Old == 0 yields +Inf for a
	// nonzero New, which always counts as a regression).
	Ratio float64
	// Regressed marks rows whose ratio exceeds their metric's threshold.
	// ns/op always gates; B/op and allocs/op gate only when their
	// thresholds are armed (they are exact, so CI can hold them tight,
	// but default off to preserve time-only gating).
	Regressed bool
}

// thresholds is the per-metric allowed fractional growth before
// -compare fails (0.25 = new may be up to 25% worse). NsOp must be
// non-negative; a negative BOp or AllocsOp disables gating on that
// metric (the row is still reported for context).
type thresholds struct {
	NsOp     float64
	BOp      float64
	AllocsOp float64
}

// forMetric resolves the threshold gating a compare metric; ok=false
// means the metric never gates.
func (t thresholds) forMetric(m string) (limit float64, ok bool) {
	switch m {
	case "ns/op":
		return t.NsOp, t.NsOp >= 0
	case "B/op":
		return t.BOp, t.BOp >= 0
	case "allocs/op":
		return t.AllocsOp, t.AllocsOp >= 0
	}
	return 0, false
}

// compareSnapshots diffs two benchmark snapshots; regressed reports
// whether any benchmark exceeded its metric's armed threshold.
func compareSnapshots(oldSnap, newSnap Snapshot, th thresholds) (rows []deltaRow, regressed bool) {
	oldByName := make(map[string]Result, len(oldSnap.Results))
	for _, r := range oldSnap.Results {
		oldByName[r.Name] = r
	}
	names := make([]string, 0, len(newSnap.Results))
	byName := make(map[string]Result, len(newSnap.Results))
	for _, r := range newSnap.Results {
		if _, ok := oldByName[r.Name]; ok {
			names = append(names, r.Name)
			byName[r.Name] = r
		}
	}
	sort.Strings(names)
	for _, name := range names {
		oldR, newR := oldByName[name], byName[name]
		for _, m := range compareMetrics {
			ov, okOld := oldR.Metrics[m]
			nv, okNew := newR.Metrics[m]
			if !okOld || !okNew {
				continue
			}
			row := deltaRow{Name: name, Metric: m, Old: ov, New: nv}
			switch {
			case ov == 0 && nv == 0:
				row.Ratio = 1
			case ov == 0:
				row.Ratio = nv / ov // +Inf
			default:
				row.Ratio = nv / ov
			}
			if limit, ok := th.forMetric(m); ok && row.Ratio > 1+limit {
				row.Regressed = true
				regressed = true
			}
			rows = append(rows, row)
		}
	}
	return rows, regressed
}

// writeCompare renders the delta table. Regressed rows carry a trailing
// "REGRESSED" marker so grepping CI logs finds them.
func writeCompare(w io.Writer, oldSnap, newSnap Snapshot, rows []deltaRow) {
	fmt.Fprintf(w, "cdrbench compare: %s (old) vs %s (new)\n", oldSnap.GitSHA, newSnap.GitSHA)
	if len(rows) == 0 {
		fmt.Fprintln(w, "cdrbench compare: no overlapping benchmarks")
		return
	}
	width := 0
	for _, r := range rows {
		if n := len(r.Name); n > width {
			width = n
		}
	}
	for _, r := range rows {
		mark := ""
		if r.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(w, "%-*s  %-9s  %14.4g -> %14.4g  (%+.1f%%)%s\n",
			width, r.Name, r.Metric, r.Old, r.New, (r.Ratio-1)*100, mark)
	}
}

// loadSnapshot reads and decodes one BENCH_<sha>.json file.
func loadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// runCompare implements `cdrbench -compare old.json new.json`. It
// returns regressed=true when any benchmark grew past its metric's
// armed threshold; the caller maps that to a nonzero exit status.
func runCompare(w io.Writer, oldPath, newPath string, th thresholds) (regressed bool, err error) {
	if th.NsOp < 0 {
		return false, fmt.Errorf("threshold must be >= 0, got %g", th.NsOp)
	}
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return false, err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return false, err
	}
	rows, regressed := compareSnapshots(oldSnap, newSnap, th)
	writeCompare(w, oldSnap, newSnap, rows)
	if regressed {
		var bad []string
		for _, r := range rows {
			if r.Regressed {
				bad = append(bad, fmt.Sprintf("%s (%s)", r.Name, r.Metric))
			}
		}
		fmt.Fprintf(w, "cdrbench compare: FAIL: regression beyond threshold in: %s\n",
			strings.Join(bad, ", "))
	} else {
		fmt.Fprintln(w, "cdrbench compare: OK")
	}
	return regressed, nil
}
