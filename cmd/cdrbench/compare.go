package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// compareMetrics are the columns of the delta table, in report order.
var compareMetrics = []string{"ns/op", "B/op", "allocs/op"}

// deltaRow is one benchmark/metric pair present in both snapshots.
type deltaRow struct {
	Name   string
	Metric string
	Old    float64
	New    float64
	// Ratio is New/Old (1.0 = unchanged; Old == 0 yields +Inf for a
	// nonzero New, which always counts as a regression).
	Ratio float64
	// Regressed marks ns/op rows whose ratio exceeds the threshold; only
	// time regressions gate the exit code — allocation metrics are
	// reported for context but machines disagree on them less usefully.
	Regressed bool
}

// compareSnapshots diffs two benchmark snapshots. threshold is the
// allowed fractional ns/op growth (0.25 = new may be up to 25% slower);
// regressed reports whether any benchmark exceeded it.
func compareSnapshots(oldSnap, newSnap Snapshot, threshold float64) (rows []deltaRow, regressed bool) {
	oldByName := make(map[string]Result, len(oldSnap.Results))
	for _, r := range oldSnap.Results {
		oldByName[r.Name] = r
	}
	names := make([]string, 0, len(newSnap.Results))
	byName := make(map[string]Result, len(newSnap.Results))
	for _, r := range newSnap.Results {
		if _, ok := oldByName[r.Name]; ok {
			names = append(names, r.Name)
			byName[r.Name] = r
		}
	}
	sort.Strings(names)
	for _, name := range names {
		oldR, newR := oldByName[name], byName[name]
		for _, m := range compareMetrics {
			ov, okOld := oldR.Metrics[m]
			nv, okNew := newR.Metrics[m]
			if !okOld || !okNew {
				continue
			}
			row := deltaRow{Name: name, Metric: m, Old: ov, New: nv}
			switch {
			case ov == 0 && nv == 0:
				row.Ratio = 1
			case ov == 0:
				row.Ratio = nv / ov // +Inf
			default:
				row.Ratio = nv / ov
			}
			if m == "ns/op" && row.Ratio > 1+threshold {
				row.Regressed = true
				regressed = true
			}
			rows = append(rows, row)
		}
	}
	return rows, regressed
}

// writeCompare renders the delta table. Regressed rows carry a trailing
// "REGRESSED" marker so grepping CI logs finds them.
func writeCompare(w io.Writer, oldSnap, newSnap Snapshot, rows []deltaRow) {
	fmt.Fprintf(w, "cdrbench compare: %s (old) vs %s (new)\n", oldSnap.GitSHA, newSnap.GitSHA)
	if len(rows) == 0 {
		fmt.Fprintln(w, "cdrbench compare: no overlapping benchmarks")
		return
	}
	width := 0
	for _, r := range rows {
		if n := len(r.Name); n > width {
			width = n
		}
	}
	for _, r := range rows {
		mark := ""
		if r.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(w, "%-*s  %-9s  %14.4g -> %14.4g  (%+.1f%%)%s\n",
			width, r.Name, r.Metric, r.Old, r.New, (r.Ratio-1)*100, mark)
	}
}

// loadSnapshot reads and decodes one BENCH_<sha>.json file.
func loadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// runCompare implements `cdrbench -compare old.json new.json`. It returns
// regressed=true when any benchmark's ns/op grew past the threshold; the
// caller maps that to a nonzero exit status.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64) (regressed bool, err error) {
	if threshold < 0 {
		return false, fmt.Errorf("threshold must be >= 0, got %g", threshold)
	}
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return false, err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return false, err
	}
	rows, regressed := compareSnapshots(oldSnap, newSnap, threshold)
	writeCompare(w, oldSnap, newSnap, rows)
	if regressed {
		var bad []string
		for _, r := range rows {
			if r.Regressed {
				bad = append(bad, r.Name)
			}
		}
		fmt.Fprintf(w, "cdrbench compare: FAIL: ns/op regression beyond %.0f%% in: %s\n",
			threshold*100, strings.Join(bad, ", "))
	} else {
		fmt.Fprintln(w, "cdrbench compare: OK")
	}
	return regressed, nil
}
