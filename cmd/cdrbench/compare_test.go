package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// timeOnly is the historical gating mode: ns/op at the given threshold,
// allocation metrics reported but not gating.
func timeOnly(nsOp float64) thresholds {
	return thresholds{NsOp: nsOp, BOp: -1, AllocsOp: -1}
}

func snap(sha string, results ...Result) Snapshot {
	return Snapshot{GitSHA: sha, GoVersion: "go1.x", GOMAXPROCS: 8, Bench: ".", Benchtime: "1x", Results: results}
}

func res(name string, ns, b, allocs float64) Result {
	return Result{Name: name, Iterations: 10, Metrics: map[string]float64{
		"ns/op": ns, "B/op": b, "allocs/op": allocs,
	}}
}

func TestCompareSnapshotsDetectsRegression(t *testing.T) {
	oldS := snap("aaaa", res("BenchmarkStationary/power-8", 1000, 64, 2), res("BenchmarkOnlyOld-8", 5, 0, 0))
	newS := snap("bbbb", res("BenchmarkStationary/power-8", 2100, 64, 2), res("BenchmarkOnlyNew-8", 7, 0, 0))

	rows, regressed := compareSnapshots(oldS, newS, timeOnly(0.25))
	if !regressed {
		t.Fatal("2.1x ns/op growth not flagged at 25% threshold")
	}
	// Only the overlapping benchmark contributes rows.
	for _, r := range rows {
		if strings.Contains(r.Name, "Only") {
			t.Errorf("non-overlapping benchmark %s in diff", r.Name)
		}
	}
	var nsRow *deltaRow
	for i := range rows {
		if rows[i].Metric == "ns/op" {
			nsRow = &rows[i]
		}
	}
	if nsRow == nil {
		t.Fatal("no ns/op row")
	}
	if !nsRow.Regressed || nsRow.Ratio < 2.0 || nsRow.Ratio > 2.2 {
		t.Errorf("ns/op row = %+v", *nsRow)
	}

	// A generous threshold lets the same diff pass.
	if _, regressed := compareSnapshots(oldS, newS, timeOnly(1.5)); regressed {
		t.Error("2.1x growth flagged at 150% threshold")
	}
}

func TestCompareIgnoresAllocRegressions(t *testing.T) {
	oldS := snap("aaaa", res("BenchmarkX-8", 100, 10, 1))
	newS := snap("bbbb", res("BenchmarkX-8", 100, 1000, 50))
	_, regressed := compareSnapshots(oldS, newS, timeOnly(0.25))
	if regressed {
		t.Error("allocation growth alone must not gate the exit code with alloc thresholds disarmed")
	}
}

func TestCompareGatesAllocRegressionsWhenArmed(t *testing.T) {
	oldS := snap("aaaa", res("BenchmarkX-8", 100, 10, 1))

	// allocs/op growth beyond its armed threshold fails even with time flat.
	newS := snap("bbbb", res("BenchmarkX-8", 100, 10, 50))
	rows, regressed := compareSnapshots(oldS, newS, thresholds{NsOp: 0.25, BOp: -1, AllocsOp: 0})
	if !regressed {
		t.Fatal("50x allocs/op growth not flagged with -threshold-allocs 0")
	}
	for _, r := range rows {
		if r.Regressed && r.Metric != "allocs/op" {
			t.Errorf("unexpected regressed row %+v", r)
		}
	}

	// B/op gates independently, at its own threshold.
	newS = snap("cccc", res("BenchmarkX-8", 100, 12, 1))
	if _, regressed := compareSnapshots(oldS, newS, thresholds{NsOp: 0.25, BOp: 0.1, AllocsOp: 0}); !regressed {
		t.Error("20% B/op growth not flagged at 10% -threshold-bytes")
	}
	if _, regressed := compareSnapshots(oldS, newS, thresholds{NsOp: 0.25, BOp: 0.5, AllocsOp: 0}); regressed {
		t.Error("20% B/op growth flagged at 50% -threshold-bytes")
	}

	// Unchanged allocations pass the tightest setting: equality is not
	// growth, so a zero threshold holds a zero-alloc loop exactly.
	if _, regressed := compareSnapshots(oldS, oldS, thresholds{NsOp: 0.25, BOp: 0, AllocsOp: 0}); regressed {
		t.Error("identical allocation metrics flagged at zero thresholds")
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, s Snapshot) string {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", snap("aaaa", res("BenchmarkX-8", 1000, 64, 2)))
	newPath := write("new.json", snap("bbbb", res("BenchmarkX-8", 2000, 64, 2)))

	var buf bytes.Buffer
	regressed, err := runCompare(&buf, oldPath, newPath, timeOnly(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("2x regression not reported by runCompare")
	}
	out := buf.String()
	for _, want := range []string{"REGRESSED", "FAIL", "BenchmarkX-8", "aaaa", "bbbb"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Identical snapshots pass.
	buf.Reset()
	regressed, err = runCompare(&buf, oldPath, oldPath, timeOnly(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Error("identical snapshots reported as regressed")
	}
	if !strings.Contains(buf.String(), "OK") {
		t.Errorf("output missing OK:\n%s", buf.String())
	}

	if _, err := runCompare(&buf, filepath.Join(dir, "missing.json"), newPath, timeOnly(0.25)); err == nil {
		t.Error("missing old snapshot not reported")
	}
	if _, err := runCompare(&buf, oldPath, newPath, timeOnly(-1)); err == nil {
		t.Error("negative threshold accepted")
	}
}
