// Command cdrbench runs the repository's headline benchmarks and writes a
// BENCH_<git-sha>.json snapshot of ns/op, B/op, allocs/op and the custom
// benchmark metrics (sweeps, cycles, BER). Committing the snapshot per
// change builds the performance trajectory of the solvers over time.
//
//	go run ./cmd/cdrbench                 # headline set, BENCH_<sha>.json
//	go run ./cmd/cdrbench -bench '.'      # every top-level benchmark
//	go run ./cmd/cdrbench -benchtime 5x -out /tmp/snap.json
//
// With -compare it diffs two committed snapshots instead of running
// anything, printing a per-benchmark delta table (ns/op, B/op,
// allocs/op) and exiting 1 when any ns/op grew beyond -threshold.
// Allocation metrics gate too once -threshold-allocs / -threshold-bytes
// are armed — they are exact counts, so CI holds them tight (0 = any
// growth fails); both default off:
//
//	go run ./cmd/cdrbench -compare BENCH_old.json BENCH_new.json
//	go run ./cmd/cdrbench -compare -threshold 0.5 old.json new.json
//	go run ./cmd/cdrbench -compare -threshold-allocs 0 -threshold-bytes 0.1 old.json new.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// headline is the default benchmark selection: the solver-loop allocation
// baseline, the heaviest figure panel, the grid-refinement scaling, and
// the batched-sweep throughput comparison.
const headline = `^(BenchmarkStationary|BenchmarkFig5Counter32|BenchmarkSolverScaling|BenchmarkSweepFig5|BenchmarkKronStationary)$`

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// -cpu suffix (e.g. "BenchmarkStationary/power-8").
	Name string `json:"name"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value: "ns/op", "B/op", "allocs/op" and any
	// b.ReportMetric extras ("sweeps", "cycles", "BER", ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the committed benchmark file.
type Snapshot struct {
	// GitSHA is the short commit hash the benchmarks ran on.
	GitSHA string `json:"git_sha"`
	// GoVersion and GOMAXPROCS record the toolchain and the parallelism
	// available to the run — absolute numbers are incomparable without them.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Bench and Benchtime reproduce the selection.
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", headline, "benchmark selection regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "per-benchmark budget passed to go test -benchtime")
	out := flag.String("out", "", "output path (default BENCH_<git-sha>.json in the current directory)")
	compare := flag.Bool("compare", false, "diff two snapshot files (old.json new.json) instead of benchmarking")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional ns/op growth before -compare fails (0.25 = 25%)")
	thresholdAllocs := flag.Float64("threshold-allocs", -1, "allowed fractional allocs/op growth before -compare fails (0 = any growth; negative disables)")
	thresholdBytes := flag.Float64("threshold-bytes", -1, "allowed fractional B/op growth before -compare fails (0 = any growth; negative disables)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two snapshot paths, got %d", flag.NArg()))
		}
		regressed, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1),
			thresholds{NsOp: *threshold, BOp: *thresholdBytes, AllocsOp: *thresholdAllocs})
		if err != nil {
			fatal(err)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	sha, err := gitShortSHA()
	if err != nil {
		fatal(err)
	}
	raw, err := runBenchmarks(*bench, *benchtime)
	if err != nil {
		fatal(err)
	}
	results := parseBenchOutput(raw)
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched %q; output was:\n%s", *bench, raw))
	}
	snap := Snapshot{
		GitSHA:     sha,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Results:    results,
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", sha)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("cdrbench: %d benchmark(s) -> %s\n", len(results), path)
}

func gitShortSHA() (string, error) {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "", fmt.Errorf("git rev-parse: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// runBenchmarks shells out to the test binary so the snapshot measures
// exactly what `go test -bench` reports.
func runBenchmarks(bench, benchtime string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchmem", "-benchtime", benchtime, ".")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go test -bench: %w\n%s", err, buf.String())
	}
	return buf.String(), nil
}

// parseBenchOutput extracts the benchmark result lines from go test output.
// Each line is "BenchmarkName-8  N  v1 unit1  v2 unit2 ...".
func parseBenchOutput(out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		if len(r.Metrics) > 0 {
			results = append(results, r)
		}
	}
	return results
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdrbench:", err)
	os.Exit(1)
}
