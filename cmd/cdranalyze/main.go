// Command cdranalyze performs a single-point CDR performance analysis and
// prints the paper's figure-panel annotations (Figures 4 and 5): counter
// length, noise levels, BER, state-space size, multigrid cycle count and
// timings, optionally followed by the stationary density series as CSV.
//
// Examples:
//
//	cdranalyze -preset fig4-high
//	cdranalyze -counter 8 -stdnw 0.09 -csv > panel.csv
//	cdranalyze -preset base -dot          # Figure 2 model topology
//	cdranalyze -preset base -slip         # cycle-slip statistics
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cdrstoch/internal/cliutil"
	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
)

func main() {
	fs := flag.NewFlagSet("cdranalyze", flag.ExitOnError)
	sf := cliutil.Bind(fs)
	of := cliutil.BindObs(fs)
	workers := cliutil.BindWorkers(fs)
	csv := fs.Bool("csv", false, "emit the phase and phase+n_w density series as CSV")
	dot := fs.Bool("dot", false, "print the FSM network (Figure 2) in Graphviz dot and exit")
	slip := fs.Bool("slip", false, "report cycle-slip statistics")
	describe := fs.Bool("describe", false, "print model dimensions before solving")
	bathtub := fs.Int("bathtub", 0, "emit an N-point bathtub curve (offset_ui,ber) as CSV")
	eyeAt := fs.Float64("eye-at", 0, "report the eye opening at this BER target")
	costRep := fs.Bool("cost", false, "print the solve's cost report (SolveReport JSON) to stderr")
	backend := fs.String("backend", "explicit", "solve backend: explicit (assemble the TPM) or kron (matrix-free Kronecker descriptor)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	obsrv, err := of.Setup()
	if err != nil {
		fatal(err)
	}

	spec, err := sf.Spec()
	if err != nil {
		fatal(err)
	}
	kron := false
	switch *backend {
	case "explicit":
	case "kron":
		kron = true
	default:
		fatal(fmt.Errorf("unknown -backend %q (want explicit or kron)", *backend))
	}
	buildDone := obsrv.Registry.Timer("build").Time()
	endBuild := obs.StartSpan(obsrv.Tracer, "cdranalyze.build")
	var model *core.Model
	if kron {
		model, err = core.BuildShell(spec)
	} else {
		model, err = core.Build(spec)
	}
	endBuild()
	buildDone()
	if err != nil {
		fatal(err)
	}
	obsrv.Registry.Gauge("model.states").Set(float64(model.NumStates()))
	if model.P != nil {
		obsrv.Registry.Gauge("model.nnz").Set(float64(model.P.NNZ()))
	} else {
		obsrv.Registry.Gauge("model.nnz").Set(float64(model.Desc.NNZ()))
	}
	if *describe {
		fmt.Println(model.Describe())
	}
	if *dot {
		// Quantize the eye jitter so the network has a finite alphabet;
		// ±4σ at the grid step loses <1e-4 of the mass per tail fold.
		k := int(4*spec.EyeJitter.Std()/spec.GridStep) + 1
		pmf, err := dist.Quantize(spec.EyeJitter, spec.GridStep, -k, k)
		if err != nil {
			fatal(err)
		}
		net, err := model.AsNetwork(pmf)
		if err != nil {
			fatal(err)
		}
		fmt.Print(net.DOT())
		if err := obsrv.Close(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	panel := &experiments.Panel{Model: model}
	opt := core.SolveOptions{}
	opt.Multigrid.Trace = obsrv.Tracer
	opt.Multigrid.Workers = *workers
	var meter *cost.Meter
	if *costRep {
		meter = cost.NewMeter()
		opt.Multigrid.Ctx = cost.ContextWith(context.Background(), meter)
	}
	solveDone := obsrv.Registry.Timer("solve").Time()
	endSolve := obs.StartSpan(obsrv.Tracer, "cdranalyze.solve")
	var a *core.Analysis
	if kron {
		a, err = model.SolveKron(opt)
	} else {
		a, err = model.Solve(opt)
	}
	endSolve()
	solveDone()
	if err != nil {
		fatal(err)
	}
	if *costRep {
		rep := meter.Finish()
		rep.Endpoint = "cli"
		rep.States = model.NumStates()
		if model.P != nil {
			rep.NNZ = model.P.NNZ()
			rep.MatrixBytes = model.P.MemoryBytes()
		} else {
			rep.NNZ = int(model.Desc.NNZ())
			rep.MatrixBytes = model.Desc.MemoryBytes()
		}
		// Stderr keeps -csv and -bathtub stdout pipelines clean.
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}
	obsrv.Registry.Counter("multigrid.cycles").Add(int64(a.Multigrid.Cycles))
	panel.Analysis = a
	if err := panel.Annotate(os.Stdout); err != nil {
		fatal(err)
	}
	if *slip {
		stats, err := model.SlipStats(a.Pi)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Slip flux: %.3e per bit  MeanTimeBetweenSlips: %.3e bits  pi(slip): %.3e\n",
			stats.Flux, stats.MeanTimeBetween, stats.TargetMass)
	}
	if *eyeAt > 0 {
		open, err := model.EyeOpening(a.Pi, *eyeAt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Eye opening at BER <= %.1e: %.4f UI\n", *eyeAt, open)
	}
	if *bathtub > 0 {
		offsets, ber, err := model.Bathtub(a.Pi, *bathtub)
		if err != nil {
			fatal(err)
		}
		fmt.Println("offset_ui,ber")
		for i := range offsets {
			fmt.Printf("%.6f,%.6e\n", offsets[i], ber[i])
		}
	}
	if *csv {
		if err := panel.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if err := obsrv.Close(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdranalyze:", err)
	os.Exit(1)
}
