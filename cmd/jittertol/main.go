// Command jittertol computes sinusoidal jitter tolerance: the largest
// arcsine-distributed jitter amplitude the CDR tolerates while meeting a
// BER target. It sweeps either noise slot of the model (the paper: one
// can "mimic deterministic sinusoidally varying jitter by assigning the
// amplitude distribution of n_r appropriately") and can sweep counter
// lengths to show how the loop filter trades bandwidth against tolerance.
//
// Examples:
//
//	jittertol -preset fig5 -target 1e-6
//	jittertol -slot drift -target 1e-6 -counters 2,8,32
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cdrstoch/internal/cliutil"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("jittertol", flag.ExitOnError)
	sf := cliutil.Bind(fs)
	of := cliutil.BindObs(fs)
	target := fs.Float64("target", 1e-6, "BER target")
	slotName := fs.String("slot", "eye", "jitter injection slot: eye (n_w) or drift (n_r)")
	maxAmp := fs.Float64("maxamp", 0.4, "maximum amplitude searched, UI")
	tolUI := fs.Float64("resolution", 0.005, "bisection resolution, UI")
	counters := fs.String("counters", "", "comma-separated counter lengths to sweep (empty = single run)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	obsrv, err := of.Setup()
	if err != nil {
		fatal(err)
	}

	var slot experiments.SJSlot
	switch *slotName {
	case "eye":
		slot = experiments.SJEye
	case "drift":
		slot = experiments.SJDrift
	default:
		fatal(fmt.Errorf("unknown slot %q", *slotName))
	}

	lengths := []int{0}
	if *counters != "" {
		lengths = nil
		for _, part := range strings.Split(*counters, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad counter %q", part))
			}
			lengths = append(lengths, v)
		}
	}

	fmt.Printf("Sinusoidal jitter tolerance at BER ≤ %.1e (slot: %s)\n", *target, *slotName)
	fmt.Printf("%-8s %14s %14s\n", "counter", "tolerance(UI)", "base BER")
	for _, l := range lengths {
		spec, err := sf.Spec()
		if err != nil {
			fatal(err)
		}
		label := spec.CounterLen
		if l > 0 {
			spec.CounterLen = l
			label = l
			if err := spec.Validate(); err != nil {
				fatal(err)
			}
		}
		endSpan := obs.StartSpan(obsrv.Tracer, fmt.Sprintf("jittertol.counter.%d", label))
		searchDone := obsrv.Registry.Timer("tolerance.search").Time()
		base, err := experiments.BERWithSJ(spec, 0, slot)
		if err != nil {
			fatal(err)
		}
		tol, err := experiments.JitterTolerance(spec, *target, slot, *maxAmp, *tolUI)
		searchDone()
		endSpan()
		if err != nil {
			fatal(err)
		}
		obsrv.Registry.Counter("tolerance.searches").Inc()
		fmt.Printf("%-8d %14.4f %14.3e\n", label, tol, base)
	}
	if err := obsrv.Close(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jittertol:", err)
	os.Exit(1)
}
