// Command jittertol computes sinusoidal jitter tolerance: the largest
// arcsine-distributed jitter amplitude the CDR tolerates while meeting a
// BER target. It sweeps either noise slot of the model (the paper: one
// can "mimic deterministic sinusoidally varying jitter by assigning the
// amplitude distribution of n_r appropriately") and can sweep counter
// lengths to show how the loop filter trades bandwidth against tolerance.
//
// Examples:
//
//	jittertol -preset fig5 -target 1e-6
//	jittertol -slot drift -target 1e-6 -counters 2,8,32
package main

import (
	"fmt"
	"os"

	"cdrstoch/internal/cliutil"
	"cdrstoch/internal/core"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/obs"
)

func main() {
	app := cliutil.NewApp("jittertol")
	fs := app.Flags
	sf := app.Spec
	target := fs.Float64("target", 1e-6, "BER target")
	slotName := fs.String("slot", "eye", "jitter injection slot: eye (n_w) or drift (n_r)")
	maxAmp := fs.Float64("maxamp", 0.4, "maximum amplitude searched, UI")
	tolUI := fs.Float64("resolution", 0.005, "bisection resolution, UI")
	counters := fs.String("counters", "", "comma-separated counter lengths to sweep (empty = single run)")
	app.Parse(os.Args[1:])

	obsrv := app.Setup()
	solveOpt := core.SolveOptions{}
	solveOpt.Multigrid.Workers = *app.Workers

	var slot experiments.SJSlot
	switch *slotName {
	case "eye":
		slot = experiments.SJEye
	case "drift":
		slot = experiments.SJDrift
	default:
		app.Fatal(fmt.Errorf("unknown slot %q", *slotName))
	}

	lengths := []int{0}
	if *counters != "" {
		var err error
		lengths, err = cliutil.ParseInts(*counters)
		if err != nil {
			app.Fatal(err)
		}
	}

	fmt.Printf("Sinusoidal jitter tolerance at BER ≤ %.1e (slot: %s)\n", *target, *slotName)
	fmt.Printf("%-8s %14s %14s\n", "counter", "tolerance(UI)", "base BER")
	for _, l := range lengths {
		spec, err := sf.Spec()
		if err != nil {
			app.Fatal(err)
		}
		label := spec.CounterLen
		if l > 0 {
			spec.CounterLen = l
			label = l
			if err := spec.Validate(); err != nil {
				app.Fatal(err)
			}
		}
		endSpan := obs.StartSpan(obsrv.Tracer, fmt.Sprintf("jittertol.counter.%d", label))
		searchDone := obsrv.Registry.Timer("tolerance.search").Time()
		base, err := experiments.BERWithSJ(spec, 0, slot, solveOpt)
		if err != nil {
			app.Fatal(err)
		}
		tol, err := experiments.JitterTolerance(spec, *target, slot, *maxAmp, *tolUI, solveOpt)
		searchDone()
		endSpan()
		if err != nil {
			app.Fatal(err)
		}
		obsrv.Registry.Counter("tolerance.searches").Inc()
		fmt.Printf("%-8d %14.4f %14.3e\n", label, tol, base)
	}
	if err := obsrv.Close(os.Stdout); err != nil {
		app.Fatal(err)
	}
}
