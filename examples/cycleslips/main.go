// Cycleslips computes the mean time between cycle slips — the paper's
// second performance measure ("the computation of mean transition times
// between certain sets of MC states") — by two independent routes and
// cross-checks them:
//
//  1. Exact mean first-passage times from the locked state, solving the
//     linear system (I − Q)·t = 1 with the dense LU solver.
//  2. The stationary entry flux into the slip set (Kac/renewal estimate),
//     which needs only the multigrid stationary solve and therefore scales
//     to models where the dense solve is infeasible.
package main

import (
	"fmt"
	"log"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/passage"
)

func main() {
	// A moderately noisy model keeps the dense first-passage solve cheap
	// (a few thousand states) while producing slips at an observable rate.
	h := 1.0 / 32
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0.001, Shape: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{
		GridStep:          h,
		PhaseMax:          0.625,
		CorrectionStep:    1.0 / 16,
		TransitionDensity: 0.5,
		MaxRunLength:      4,
		EyeJitter:         dist.NewGaussian(0, 0.12),
		Drift:             drift,
		CounterLen:        6,
		Threshold:         0.5,
	}
	model, err := core.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(model.Describe())

	analysis, err := model.Solve(core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBER: %.3e\n", analysis.BER)

	// Route 1: exact hitting times from the locked state.
	mts, err := model.MeanTimeToSlip()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mean time to first slip from lock (dense first passage): %.4e bits\n", mts)

	// Route 2: stationary flux into the slip set.
	flux, err := model.SlipStats(analysis.Pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mean time between slips (stationary entry flux):        %.4e bits\n",
		flux.MeanTimeBetween)
	fmt.Printf("Kac mean return time to the slip set (1/pi(slip)):      %.4e bits\n",
		1/flux.TargetMass)

	// Route 1b: averaged over the stationary distribution conditioned on
	// being locked, for an apples-to-apples comparison with the flux.
	times, err := passage.HittingTimesDense(model.P, model.SlipSet())
	if err != nil {
		log.Fatal(err)
	}
	slipSet := model.SlipSet()
	from := make([]float64, len(analysis.Pi))
	for i, p := range analysis.Pi {
		if !slipSet[i] {
			from[i] = p
		}
	}
	mfp, err := passage.MeanFirstPassage(from, times)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mean time to slip from the stationary locked ensemble:  %.4e bits\n", mfp)
	fmt.Printf("\nFlux/ensemble ratio: %.3f (same order expected; the flux route\n"+
		"conditions on entry while the ensemble route averages over the basin)\n",
		flux.MeanTimeBetween/mfp)
}
