// Quickstart: build a CDR model, solve for its stationary distribution
// with the multilevel solver, and print the headline performance numbers —
// the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

func main() {
	// Start from the library defaults and dial in the jitter environment:
	// 0.08 UI RMS Gaussian eye jitter and a bounded n_r with a small
	// frequency-offset mean.
	spec := core.DefaultSpec()
	spec.EyeJitter = dist.NewGaussian(0, 0.08)
	drift, err := dist.DriftPMF(dist.DriftSpec{
		Step:  spec.GridStep,
		Max:   2 * spec.GridStep,
		Mean:  0.0002,
		Shape: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec.Drift = drift

	model, err := core.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(model.Describe())

	analysis, err := model.Solve(core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(model.FigureHeader(analysis.BER))
	fmt.Println(model.FigureFooter(analysis))

	slip, err := model.SlipStats(analysis.Pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMean time between cycle slips: %.3e bit periods\n", slip.MeanTimeBetween)

	// Where does the phase error live? Print a coarse stationary profile.
	marg := model.PhaseMarginal(analysis.Pi)
	fmt.Println("\nStationary phase error mass by band:")
	var inLock, mid, tail float64
	for mi, p := range marg {
		phi := model.PhaseValue(mi)
		switch {
		case phi >= -1.0/16 && phi <= 1.0/16:
			inLock += p
		case phi >= -0.25 && phi <= 0.25:
			mid += p
		default:
			tail += p
		}
	}
	fmt.Printf("  |phi| <= 1/16 UI : %.6f\n", inLock)
	fmt.Printf("  1/16 < |phi| <= 1/4 : %.6f\n", mid)
	fmt.Printf("  |phi| > 1/4 UI  : %.3e\n", tail)
}
