// Freqacquisition demonstrates the second-order (phase + frequency) loop
// extension: when the transmitter/receiver frequency offset exceeds the
// proportional path's tracking capacity G/(2L), the first-order loop of
// the paper lags toward the decision threshold; a frequency register with
// one grid step of authority recovers the lock. It also shows the flip
// side — a bang-bang integral path with too much authority hunts — so the
// register range is a design parameter the analysis can sweep.
package main

import (
	"fmt"
	"log"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/freqloop"
)

func main() {
	h := 1.0 / 32
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0.01, Shape: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	base := core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      2,
		EyeJitter:         dist.NewGaussian(0, 0.06),
		Drift:             drift,
		CounterLen:        4,
		Threshold:         0.5,
	}
	fmt.Printf("Frequency offset: %.4f UI/bit; proportional capacity G/(2L) = %.4f UI/bit\n\n",
		drift.Mean(), base.CorrectionStep/float64(2*base.CounterLen))

	// First-order reference.
	first, err := core.Build(base)
	if err != nil {
		log.Fatal(err)
	}
	piF, err := first.SolveDirect()
	if err != nil {
		log.Fatal(err)
	}
	margF := first.PhaseMarginal(piF)
	lagF := 0.0
	for mi, p := range margF {
		lagF += p * first.PhaseValue(mi)
	}
	fmt.Printf("%-24s %10s %12s %12s %12s\n", "loop", "states", "BER", "mean lag", "freq comp")
	fmt.Printf("%-24s %10d %12.3e %12.4f %12s\n", "first-order", first.NumStates(), first.BER(piF), lagF, "-")

	// Second-order with increasing register authority.
	for _, f := range []int{1, 2, 3} {
		m, err := freqloop.Build(freqloop.Spec{Base: base, FreqLen: f, FreqStep: h})
		if err != nil {
			log.Fatal(err)
		}
		pi, _, err := m.Solve(1e-11, 500000)
		if err != nil {
			log.Fatal(err)
		}
		marg := m.PhaseMarginal(pi)
		lag := 0.0
		for mi, p := range marg {
			lag += p * m.PhaseValue(mi)
		}
		fmt.Printf("%-24s %10d %12.3e %12.4f %12.4f\n",
			fmt.Sprintf("second-order F=%d", f), m.NumStates(), m.BER(pi), lag, m.MeanFreqCorrection(pi))
	}
	fmt.Println("\nReading: F = 1 compensates the offset and cuts the BER; larger")
	fmt.Println("registers hunt (bang-bang integral paths trade lag for limit-cycle")
	fmt.Println("amplitude), so more authority is worse once the drift is covered.")
}
