// Acquisition traces the loop's lock acquisition transient with the
// chain's transient analysis: starting from a worst-case phase offset,
// the per-bit error probability decays toward the stationary BER as the
// state distribution mixes. The same machinery prices a burst-mode
// preamble: how many bits must the receiver see before its error
// probability is within 10% of steady state?
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/markov"
)

func main() {
	h := 1.0 / 32
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0.0005, Shape: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{
		GridStep:          h,
		PhaseMax:          0.625,
		CorrectionStep:    1.0 / 16,
		TransitionDensity: 0.5,
		MaxRunLength:      4,
		EyeJitter:         dist.NewGaussian(0, 0.08),
		Drift:             drift,
		CounterLen:        4,
		Threshold:         0.5,
	}
	model, err := core.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := model.Solve(core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ch, err := model.Chain()
	if err != nil {
		log.Fatal(err)
	}
	errProb := model.ErrorProbVector()

	// Worst case: the loop wakes up 0.4 UI off, counter reset.
	x0 := make([]float64, model.NumStates())
	x0[model.StateIndex(0, spec.CounterLen-1, model.PhaseIndex(0.4))] = 1

	fmt.Println("Acquisition from a 0.4 UI offset (per-bit error probability):")
	fmt.Printf("%-8s %14s\n", "bit", "P(error)")
	x := x0
	printed := map[int]bool{}
	checkpoints := []int{0, 10, 20, 40, 80, 160, 320, 640, 1280}
	step := 0
	for _, cp := range checkpoints {
		var err2 error
		x, err2 = ch.Evolve(x, cp-step)
		if err2 != nil {
			log.Fatal(err2)
		}
		step = cp
		p, err2 := markov.Expectation(x, errProb)
		if err2 != nil {
			log.Fatal(err2)
		}
		bar := int(math.Max(0, 40+4*math.Log10(p+1e-30)))
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%-8d %14.3e %s\n", cp, p, strings.Repeat("#", bar))
		printed[cp] = true
	}
	fmt.Printf("\nStationary BER: %.3e\n", analysis.BER)

	// Preamble length: expected cumulative errors over the first N bits,
	// and the mixing time to within TV 0.05 of stationarity.
	cum, err := ch.ExpectedCumulative(x0, errProb, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Expected bit errors in the first 1000 bits from cold start: %.3f\n", cum)
	acq, err := model.AcquisitionTime(analysis.Pi, 0.4, 0.05, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bits to mix within TV 0.05 of stationarity: %d\n", acq)
}
