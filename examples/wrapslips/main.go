// Wrapslips contrasts the two boundary treatments of the phase-error
// state. The saturating model (the analysis-friendly default) reads the
// cycle-slip rate off the stationary entry flux into the |Φ| ≥ 0.5 set;
// the wrap model makes the slip physical — the phase wraps modulo one UI
// and the model counts boundary crossings exactly — and a Monte Carlo run
// of the same wrapped dynamics confirms the analytic rate.
package main

import (
	"fmt"
	"log"

	"cdrstoch/internal/bitsim"
	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

func main() {
	h := 1.0 / 32
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0.002, Shape: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	base := core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      4,
		EyeJitter:         dist.NewGaussian(0, 0.12),
		Drift:             drift,
		CounterLen:        4,
		Threshold:         0.5,
	}

	// Saturating model: slip rate from stationary entry flux.
	mSat, err := core.Build(base)
	if err != nil {
		log.Fatal(err)
	}
	aSat, err := mSat.Solve(core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	flux, err := mSat.SlipStats(aSat.Pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Saturating model (%d states): BER %.3e, slip flux %.4e /bit (MTBS %.3e bits)\n",
		mSat.NumStates(), aSat.BER, flux.Flux, flux.MeanTimeBetween)

	// Wrap model: exact boundary-crossing rate.
	wrapSpec := base
	wrapSpec.WrapPhase = true
	mWrap, err := core.Build(wrapSpec)
	if err != nil {
		log.Fatal(err)
	}
	aWrap, err := mWrap.Solve(core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rate, mtbs, err := mWrap.WrapSlipRate(aWrap.Pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Wrap model       (%d states): BER %.3e, wrap rate %.4e /bit (MTBS %.3e bits)\n",
		mWrap.NumStates(), aWrap.BER, rate, mtbs)

	// Monte Carlo of the wrapped dynamics.
	mc, err := bitsim.RunParallel(bitsim.Config{Spec: wrapSpec, Bits: 4000000, Seed: 1}, 0)
	if err != nil {
		log.Fatal(err)
	}
	mcRate := float64(mc.SlipEntries) / float64(mc.Bits)
	fmt.Printf("Monte Carlo      (%.0e bits): %d slips -> rate %.4e /bit (MTBS %.3e bits)\n",
		float64(mc.Bits), mc.SlipEntries, mcRate, mc.MeanTimeBetweenSlips)
	fmt.Printf("\nAnalytic wrap rate vs Monte Carlo: ratio %.3f\n", rate/mcRate)
	fmt.Printf("Saturating flux vs wrap rate:      ratio %.3f\n", flux.Flux/rate)
}
