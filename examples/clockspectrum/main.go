// Clockspectrum computes the recovered clock's phase-noise spectrum
// directly from the Markov model — the Fourier transform of the phase
// autocorrelation the paper names as the follow-on computation after the
// stationary solve. Sweeping the loop-filter counter length moves the
// loop bandwidth, and the spectra show it: short counters track fast
// (flat, wideband phase noise from dithering), long counters average
// (noise concentrates at low frequency where the untracked wander lives).
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"cdrstoch/internal/core"
	"cdrstoch/internal/experiments"
)

func main() {
	freqs := make([]float64, 24)
	for i := range freqs {
		// Log-spaced from 1e-3 to 0.5 cycles/bit.
		freqs[i] = math.Pow(10, -3+2.7*float64(i)/float64(len(freqs)-1))
		if freqs[i] > 0.5 {
			freqs[i] = 0.5
		}
	}

	type row struct {
		counter int
		rms     float64
		psd     []float64
	}
	var rows []row
	for _, l := range []int{2, 8, 32} {
		spec := experiments.Fig5Spec(l)
		m, err := core.Build(spec)
		if err != nil {
			log.Fatal(err)
		}
		a, err := m.Solve(core.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		psd, err := m.PhaseNoiseSpectrum(a.Pi, 1024, freqs)
		if err != nil {
			log.Fatal(err)
		}
		marg := m.PhaseMarginal(a.Pi)
		mu, v := 0.0, 0.0
		for mi, p := range marg {
			mu += p * m.PhaseValue(mi)
		}
		for mi, p := range marg {
			d := m.PhaseValue(mi) - mu
			v += p * d * d
		}
		rows = append(rows, row{counter: l, rms: math.Sqrt(v), psd: psd})
	}

	fmt.Println("Recovered clock phase-noise spectrum, UI²/(cycle/bit):")
	fmt.Printf("%-12s", "freq (c/bit)")
	for _, r := range rows {
		fmt.Printf("  L=%-10d", r.counter)
	}
	fmt.Println()
	for i, f := range freqs {
		fmt.Printf("%-12.4f", f)
		for _, r := range rows {
			fmt.Printf("  %-12.3e", r.psd[i])
		}
		fmt.Println()
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("L=%-3d RMS phase error: %.4f UI  %s\n",
			r.counter, r.rms, strings.Repeat("#", int(r.rms*400)))
	}
	fmt.Println("\nReading: the spectrum corner moves down as the counter lengthens —")
	fmt.Println("the digital loop bandwidth is (transition density)·G/(2L) per bit.")
}
