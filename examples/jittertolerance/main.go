// Jittertolerance sweeps sinusoidal-jitter tolerance against the loop
// filter length, exercising the paper's observation that deterministic
// sinusoidal jitter is captured "by assigning the amplitude distribution
// of n_r appropriately" (the arcsine law). Short counters tolerate more
// accumulated (n_r-slot) jitter — the loop reacts fast enough to track
// it — while eye-slot (n_w) jitter is untrackable by construction, so its
// tolerance is set by the noise averaging of longer counters instead.
package main

import (
	"fmt"
	"log"

	"cdrstoch/internal/dist"
	"cdrstoch/internal/experiments"
)

func main() {
	const target = 1e-6
	base := experiments.BaseSpec()
	base.EyeJitter = dist.NewGaussian(0, 0.05)

	fmt.Printf("Sinusoidal jitter tolerance at BER ≤ %.0e\n\n", target)
	fmt.Printf("%-8s %22s %22s\n", "counter", "eye-slot tol (UI)", "drift-slot tol (UI)")
	for _, l := range []int{2, 8, 32} {
		spec := base
		spec.CounterLen = l
		eyeTol, err := experiments.JitterTolerance(spec, target, experiments.SJEye, 0.45, 0.005)
		if err != nil {
			log.Fatalf("counter %d eye: %v", l, err)
		}
		driftTol, err := experiments.JitterTolerance(spec, target, experiments.SJDrift, 0.45, 0.005)
		if err != nil {
			log.Fatalf("counter %d drift: %v", l, err)
		}
		fmt.Printf("%-8d %22.3f %22.3f\n", l, eyeTol, driftTol)
	}
	fmt.Println("\nReading: the drift-slot (accumulating) tolerance falls as the loop")
	fmt.Println("filter lengthens — the loop becomes too slow to track the wander —")
	fmt.Println("exactly the mechanism behind the paper's Figure 5 long-counter penalty.")
}
