// Plljitter closes the loop between the analog and digital halves of the
// CDR circuit: it simulates the charge-pump PLL that generates the
// multi-phase clock (internal/pllsim), characterizes the recovered clock's
// jitter, folds that characterization into the stochastic model's eye
// jitter — the paper: "Once the internal clock jitter has been
// characterized using techniques covered elsewhere, it can easily be
// captured in our models and analysis" — and quantifies the BER impact.
package main

import (
	"fmt"
	"log"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/pllsim"
)

func main() {
	// Characterize the analog loop. FMNoise models VCO device noise plus
	// the substrate/supply interference the paper's industrial anecdote
	// blames for the BER shortfall.
	params := pllsim.DefaultParams()
	params.FMNoise = 120e3
	res, err := pllsim.Simulate(params, 200000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PLL characterization over %d cycles (after %d lock cycles):\n",
		len(res.Samples), res.LockCycles)
	fmt.Printf("  RMS jitter:            %.4f UI\n", res.RMS)
	fmt.Printf("  peak-to-peak:          %.4f UI\n", res.PkPk)
	fmt.Printf("  cycle-to-cycle RMS:    %.4f UI\n", res.CycleToCycle)
	fmt.Printf("  static offset removed: %.4f UI\n", res.StaticOffsetUI)

	// Quantize the clock jitter onto the model grid and combine it with
	// the data eye jitter by convolution (independent contributions).
	spec := experiments.Fig4Spec(true)
	k := 24
	clockPMF, err := res.JitterPMF(spec.GridStep, k)
	if err != nil {
		log.Fatal(err)
	}
	eyePMF, err := dist.Quantize(spec.EyeJitter, spec.GridStep, -k, k)
	if err != nil {
		log.Fatal(err)
	}
	combined, err := eyePMF.Convolve(clockPMF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nJitter budget (std, UI): data eye %.4f ⊕ clock %.4f = total %.4f\n",
		eyePMF.Std(), clockPMF.Std(), combined.Std())

	solveBER := func(label string, eye dist.Continuous) float64 {
		s := spec
		s.EyeJitter = eye
		m, err := core.Build(s)
		if err != nil {
			log.Fatal(err)
		}
		a, err := m.Solve(core.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s BER = %.3e\n", label, a.BER)
		return a.BER
	}
	fmt.Println("\nBER with and without the internal clock jitter:")
	without := solveBER("data eye jitter only:", eyePMF)
	with := solveBER("eye ⊕ PLL clock jitter:", combined)
	fmt.Printf("\nClock jitter costs a %.1fx BER degradation on this design.\n", with/without)
}
