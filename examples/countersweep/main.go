// Countersweep reproduces the paper's Figure 5 experiment: the effect of
// the loop-filter counter overflow length on BER, all noise levels held
// constant. The paper's conclusion — reproduced here — is an interior
// optimum: a short counter makes the loop bandwidth so high that it
// follows the eye jitter n_w and dithers into errors; a long counter makes
// the loop too slow to track the n_r drift; the best BER sits in between
// (at length 8 for the calibrated noise levels).
package main

import (
	"fmt"
	"log"

	"cdrstoch/internal/experiments"
)

func main() {
	lengths := []int{1, 2, 4, 8, 16, 32}
	fmt.Println("Figure 5: BER vs counter overflow length (noise fixed)")
	fmt.Printf("%-8s %12s %12s %10s\n", "counter", "BER", "vs best", "states")

	type row struct {
		l      int
		ber    float64
		states int
	}
	var rows []row
	best := -1.0
	for _, l := range lengths {
		p, err := experiments.RunPanel(experiments.Fig5Spec(l))
		if err != nil {
			log.Fatalf("counter %d: %v", l, err)
		}
		rows = append(rows, row{l, p.Analysis.BER, p.Model.NumStates()})
		if best < 0 || p.Analysis.BER < best {
			best = p.Analysis.BER
		}
	}
	for _, r := range rows {
		fmt.Printf("%-8d %12.3e %11.1fx %10d\n", r.l, r.ber, r.ber/best, r.states)
	}
	fmt.Println("\nPaper, §Examples: \"there is an optimal counter length for given")
	fmt.Println("levels of noise, the computation of which is enabled by the accurate")
	fmt.Println("and efficient analysis method described in the paper.\"")
}
