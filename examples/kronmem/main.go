// Kronmem demonstrates the matrix-free Kronecker backend on a chain
// whose explicit transition matrix is out of proportion to the memory
// the solve actually needs: a fine phase grid (1/512 UI) with a wide
// oscillator-drift PMF, so every state fans out into hundreds of
// explicit entries while the descriptor stores only the component
// factors. It prices the assembly that never happens (exact entry
// count via core.ExplicitEntries), solves matrix-free, verifies the
// result is a proper distribution, and reports the process's measured
// peak RSS from /proc/self/status.
//
//	go run ./examples/kronmem            # matrix-free (the point)
//	go run ./examples/kronmem -explicit  # assemble the TPM, for contrast
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

// spec is a drift-heavy fine-grid chain: phase resolved to 1/1024 UI,
// drift jumping out to ±32/1024 UI (a 129-point PMF), counter length 8.
// Every phase state fans into hundreds of drift destinations, which is
// exactly the regime where explicit assembly stops paying for itself.
func spec() core.Spec {
	s := core.DefaultSpec()
	s.GridStep = 1.0 / 1024
	s.CounterLen = 8
	s.EyeJitter = dist.NewGaussian(0, 0.05)
	drift, err := dist.DriftPMF(dist.DriftSpec{
		Step:  s.GridStep,
		Max:   32 * s.GridStep,
		Mean:  0.0002,
		Shape: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	s.Drift = drift
	return s
}

// peakRSSBytes reads the process high-water resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		var kb int64
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, "VmHWM:"), "%d kB", &kb); err == nil {
			return kb << 10
		}
	}
	return 0
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }

func main() {
	explicit := flag.Bool("explicit", false, "assemble the TPM and solve the classical way (for the RSS contrast)")
	flag.Parse()

	s := spec()
	shell, err := core.BuildShell(s)
	if err != nil {
		log.Fatal(err)
	}
	n := shell.NumStates()
	entries := shell.ExplicitEntries()
	// A CSR entry costs 12 bytes (int32 col + float64 val) plus the
	// transpose copy every stationary solver keeps — 16 B/entry is what
	// this repository's spmat actually pays, measured by CSR.MemoryBytes.
	explicitBytes := int64(entries) * 16
	fmt.Printf("states: %d\n", n)
	fmt.Printf("explicit TPM: %d entries = %.1f MiB (plus transpose: %.1f MiB)\n",
		entries, mib(explicitBytes/2), mib(explicitBytes))
	fmt.Printf("descriptor:   %d stored factor entries = %.3f MiB (%d terms)\n",
		shell.Desc.NNZ(), mib(shell.Desc.MemoryBytes()), shell.Desc.NumTerms())

	start := time.Now()
	var a *core.Analysis
	if *explicit {
		full, err := core.Build(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("assembled:    %d nnz = %.1f MiB CSR\n", full.P.NNZ(), mib(full.P.MemoryBytes()))
		a, err = full.Solve(core.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		a, err = shell.SolveKron(core.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
	}

	mass := 0.0
	for _, p := range a.Pi {
		mass += p
	}
	fmt.Printf("solved: %d cycles in %.1fs, residual %.2e, BER %.3e, sum(pi) %.12f\n",
		a.Multigrid.Cycles, time.Since(start).Seconds(), a.Multigrid.Residual, a.BER, mass)
	if rss := peakRSSBytes(); rss > 0 {
		fmt.Printf("peak RSS: %.1f MiB (explicit TPM alone would be %.1f MiB)\n",
			mib(rss), mib(explicitBytes))
	}
}
