// Interference models the paper's motivating industrial failure: "The
// designers suspected that the main cause for the errors is the
// interference noise in the PLL-based clock recovery circuit, induced by
// the rest of the chip's circuitry." Interference arrives in correlated
// bursts, not as a white background — so this example drives the CDR with
// a Markov-modulated noise environment (quiet ↔ burst regimes), and
// quantifies what white-noise analysis would get wrong: the average BER
// matches a regime-weighted mixture, but frame errors cluster far below
// the i.i.d. prediction, and the damage is concentrated in the bursts.
package main

import (
	"fmt"
	"log"
	"math"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/multigrid"
	"cdrstoch/internal/regime"
)

func main() {
	h := 1.0 / 32
	base := core.Spec{
		GridStep:          h,
		PhaseMax:          0.625,
		CorrectionStep:    1.0 / 16,
		TransitionDensity: 0.5,
		MaxRunLength:      4,
		CounterLen:        6,
		Threshold:         0.5,
	}
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0.0005, Shape: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	// Quiet: the design's nominal 0.04 UI eye jitter. Burst: supply/
	// substrate interference triples the effective jitter for ~30-bit
	// episodes arriving every ~600 bits.
	spec := regime.Spec{
		Base: base,
		Regimes: []regime.Regime{
			{Name: "quiet", EyeJitter: dist.NewGaussian(0, 0.04), Drift: drift},
			{Name: "burst", EyeJitter: dist.NewGaussian(0, 0.12), Drift: drift},
		},
		Switch: [][]float64{
			{1 - 1.0/600, 1.0 / 600},
			{1.0 / 30, 1 - 1.0/30},
		},
	}
	m, err := regime.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	pi, res, err := m.Solve(multigrid.Config{})
	if err != nil {
		log.Fatal(err)
	}
	occ := m.RegimeMarginal(pi)
	cond := m.ConditionalBER(pi)
	total := m.BER(pi)
	fmt.Printf("Model: %d states, solved in %d multigrid cycles\n\n", m.NumStates(), res.Cycles)
	fmt.Printf("%-8s %12s %14s %16s\n", "regime", "occupancy", "cond. BER", "BER contribution")
	for r, reg := range spec.Regimes {
		fmt.Printf("%-8s %12.4f %14.3e %15.1f%%\n",
			reg.Name, occ[r], cond[r], 100*occ[r]*cond[r]/total)
	}
	fmt.Printf("\nTotal BER: %.3e\n", total)

	// What a white-noise analysis would conclude: same total BER, but
	// errors spread evenly.
	frame := 810 * 8
	fer, err := m.FrameErrorRate(pi, frame)
	if err != nil {
		log.Fatal(err)
	}
	iid := 1 - math.Pow(1-total, float64(frame))
	fmt.Printf("\nSTS-1 frame (%d bits) error rate:\n", frame)
	fmt.Printf("  exact (bursty):        %.4e\n", fer)
	fmt.Printf("  i.i.d. at same BER:    %.4e\n", iid)
	fmt.Printf("  clustering factor:     %.3f\n", fer/iid)
	fmt.Println("\nBursts concentrate the errors: fewer frames are hit, but each hit")
	fmt.Println("frame carries many errors — exactly the failure signature that white-")
	fmt.Println("noise analysis misses and the paper's designers needed to predict.")
}
