// Bathtub renders the BER-vs-sampling-offset bathtub curve of the CDR and
// the frame-level consequences of the stationary analysis: the eye opening
// at a BER target, the frame error rate of a SONET STS-1 frame computed
// exactly through the loop-state correlation, and the comparison against
// the i.i.d. approximation (a clustering factor below 1 means errors
// bunch into bad-phase episodes; ≈1 means the per-bit eye jitter
// dominates the slow phase wander).
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"cdrstoch/internal/core"
	"cdrstoch/internal/experiments"
)

func main() {
	spec := experiments.Fig5Spec(8)
	model, err := core.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := model.Solve(core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pi := analysis.Pi

	// Bathtub curve rendered as an ASCII log-scale plot.
	const points = 33
	offsets, ber, err := model.Bathtub(pi, points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bathtub curve (sampling offset vs log10 BER):")
	minExp, maxExp := 0.0, -300.0
	for _, b := range ber {
		e := math.Log10(b)
		if e < minExp {
			minExp = e
		}
		if e > maxExp {
			maxExp = e
		}
	}
	width := 50
	for i, b := range ber {
		e := math.Log10(b)
		bar := int(float64(width) * (e - minExp) / (maxExp - minExp))
		fmt.Printf("%+.3f UI | %-*s log10(BER)=%6.2f\n",
			offsets[i], width, strings.Repeat("#", bar), e)
	}

	for _, target := range []float64{1e-6, 1e-9, 1e-12} {
		open, err := model.EyeOpening(pi, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nEye opening at BER ≤ %.0e: %.4f UI", target, open)
	}

	// Frame error rate for a SONET STS-1 frame (810 bytes = 6480 bits).
	const frameBits = 810 * 8
	fer, err := model.FrameErrorRate(pi, frameBits)
	if err != nil {
		log.Fatal(err)
	}
	iid := 1 - math.Pow(1-analysis.BER, frameBits)
	fmt.Printf("\n\nSTS-1 frame (%d bits) error rate:\n", frameBits)
	fmt.Printf("  exact (loop-state correlated): %.4e\n", fer)
	fmt.Printf("  i.i.d. approximation:          %.4e\n", iid)
	fmt.Printf("  clustering factor:             %.3f\n", fer/iid)

	// Correction activity: how hard the phase-selection mux works.
	act := model.CorrectionActivity(pi)
	fmt.Printf("\nPhase mux activity: %.4e up/bit, %.4e down/bit, net %.3e UI/bit\n",
		act.UpRate, act.DownRate, act.NetUIPerBit)
	fmt.Printf("(n_r drift to cancel: %.3e UI/bit)\n", spec.Drift.Mean())
}
