// Mcvalidate cross-checks the Markov-chain analysis against brute-force
// Monte Carlo simulation — and then makes the paper's core argument
// quantitative: at SONET-class BER targets the simulation route needs
// ~1e14 bits while the analysis route solves the same model in seconds.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"cdrstoch/internal/bitsim"
	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/obs"
)

func main() {
	reg := obs.NewRegistry()

	// Part 1: a deliberately noisy model whose BER (~1e-2) a short Monte
	// Carlo run can resolve. Both routes must agree.
	h := 1.0 / 16
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: h / 8, Shape: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	noisy := core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      3,
		EyeJitter:         dist.NewGaussian(0, 0.15),
		Drift:             drift,
		CounterLen:        3,
		Threshold:         0.5,
	}
	model, err := core.Build(noisy)
	if err != nil {
		log.Fatal(err)
	}
	reg.Gauge("model.states").Set(float64(model.NumStates()))
	t0 := time.Now()
	solveDone := reg.Timer("analysis.solve").Time()
	pi, err := model.SolveDirect()
	solveDone()
	if err != nil {
		log.Fatal(err)
	}
	analytic := model.BER(pi)
	tAnalysis := time.Since(t0)

	t0 = time.Now()
	mcDone := reg.Timer("montecarlo").Time()
	mc, err := bitsim.Run(bitsim.Config{Spec: noisy, Bits: 2000000, Seed: 1, Metrics: reg})
	mcDone()
	if err != nil {
		log.Fatal(err)
	}
	tMC := time.Since(t0)

	fmt.Println("High-noise cross-validation (BER large enough to simulate):")
	fmt.Printf("  analysis:    BER = %.4e   (%v)\n", analytic, tAnalysis)
	fmt.Printf("  monte carlo: %v   (%v)\n", mc, tMC)
	inside := analytic >= mc.CILow && analytic <= mc.CIHigh
	fmt.Printf("  analysis inside MC 95%% interval: %v\n\n", inside)

	// Part 2: the low-BER regime. The analysis solves it directly; the
	// simulation budget is astronomical.
	panelDone := reg.Timer("analysis.panel").Time()
	panel, err := experiments.RunPanel(experiments.Fig4Spec(false))
	panelDone()
	if err != nil {
		log.Fatal(err)
	}
	reg.Counter("multigrid.cycles").Add(int64(panel.Analysis.Multigrid.Cycles))
	fmt.Println("Low-noise regime (paper Figure 4, top panel):")
	fmt.Printf("  analysis BER = %.3e in %v (%d states)\n",
		panel.Analysis.BER, panel.Analysis.SolveTime, panel.Model.NumStates())
	target := panel.Analysis.BER
	if target < 1e-14 {
		target = 1e-14
	}
	bits, err := bitsim.BitsForTarget(target, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	perBit := tMC.Seconds() / float64(mc.Bits)
	years := bits * perBit / (365 * 24 * 3600)
	fmt.Printf("  Monte Carlo would need ≈ %.2e bits to resolve it to ±10%%\n", bits)
	fmt.Printf("  at the measured %.1e s/bit that is ≈ %.1e years of simulation\n", perBit, years)
	fmt.Println("\nPaper, §Introduction: such specifications \"are practically impossible")
	fmt.Println("to verify through straightforward simulation\".")

	// The same comparison, as recorded work counters: multigrid cycles and
	// solve time on the analysis side against simulated bits and wall time
	// on the Monte Carlo side.
	fmt.Println("\nMetrics snapshot:")
	if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
